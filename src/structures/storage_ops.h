// Pluggable persistence layer for the data structures (paper Section 5.2:
// "We implemented one in-memory B+-tree version for each different
// persistence layer").
#ifndef REWIND_STRUCTURES_STORAGE_OPS_H_
#define REWIND_STRUCTURES_STORAGE_OPS_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/core/transaction_manager.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// Word-granularity storage interface a persistent data structure is written
/// against. One instance per thread (adapters carry the thread's current
/// transaction).
///
/// The protocol separates three kinds of writes:
///  - Store():     a *critical* update to reachable persistent state; must
///                 be recoverable (logged under REWIND).
///  - InitStore(): initialization of freshly allocated, still-unreachable
///                 memory; needs no undo information but must be persistent
///                 before the (critical) write that publishes it —
///                 PublishInit() provides that barrier.
///  - Load():      a read; under REWIND's Batch log this must observe
///                 writes still parked in the WAL deferral buffer.
class StorageOps {
 public:
  virtual ~StorageOps() = default;

  /// Allocates zeroed storage for a node/payload.
  virtual void* AllocRaw(std::size_t bytes) = 0;
  /// Immediately frees storage (only safe for never-published memory).
  virtual void FreeRaw(void* p) = 0;
  /// Frees storage belonging to the current operation's transaction, with
  /// whatever deferral the layer requires for recoverability.
  virtual void DeferredFree(void* p) = 0;

  virtual std::uint64_t Load(const std::uint64_t* addr) = 0;
  virtual void Store(std::uint64_t* addr, std::uint64_t value) = 0;
  virtual void InitStore(std::uint64_t* addr, std::uint64_t value) = 0;
  /// Persistence barrier for preceding InitStore()s to [p, p+bytes).
  virtual void PublishInit(void* p, std::size_t bytes) = 0;

  /// Begins / finishes a recoverable operation (a transaction under
  /// REWIND). Layers without transactions make these no-ops.
  virtual void BeginOp() {}
  virtual void CommitOp() {}
  virtual void AbortOp() {}
};

/// Volatile layer: plain loads/stores on malloc'd memory. The paper's
/// "DRAM" configuration — no persistence, no recoverability.
class DramOps : public StorageOps {
 public:
  void* AllocRaw(std::size_t bytes) override {
    return std::calloc(1, bytes);
  }
  void FreeRaw(void* p) override { std::free(p); }
  void DeferredFree(void* p) override { std::free(p); }
  std::uint64_t Load(const std::uint64_t* addr) override { return *addr; }
  void Store(std::uint64_t* addr, std::uint64_t value) override {
    *addr = value;
  }
  void InitStore(std::uint64_t* addr, std::uint64_t value) override {
    *addr = value;
  }
  void PublishInit(void*, std::size_t) override {}
};

/// Persistent but non-recoverable layer: every write is a non-temporal
/// store to NVM. The paper's "NVM" configuration — data survives power
/// loss only if no operation was in flight.
class NvmOps : public StorageOps {
 public:
  explicit NvmOps(NvmManager* nvm) : nvm_(nvm) {}
  void* AllocRaw(std::size_t bytes) override { return nvm_->Alloc(bytes); }
  void FreeRaw(void* p) override { nvm_->Free(p); }
  void DeferredFree(void* p) override { nvm_->Free(p); }
  std::uint64_t Load(const std::uint64_t* addr) override { return *addr; }
  void Store(std::uint64_t* addr, std::uint64_t value) override {
    nvm_->StoreNT(addr, value);
  }
  void InitStore(std::uint64_t* addr, std::uint64_t value) override {
    nvm_->StoreNT(addr, value);
  }
  void PublishInit(void*, std::size_t) override { nvm_->Fence(); }

 private:
  NvmManager* nvm_;
};

/// The REWIND layer: critical writes are WAL-logged through the transaction
/// manager; loads honour the Batch deferral; frees become DELETE records.
class RewindOps : public StorageOps {
 public:
  explicit RewindOps(TransactionManager* tm) : tm_(tm) {}

  void* AllocRaw(std::size_t bytes) override {
    return tm_->nvm()->Alloc(bytes);
  }
  void FreeRaw(void* p) override { tm_->nvm()->Free(p); }
  void DeferredFree(void* p) override { tm_->LogDelete(tid_, p); }
  std::uint64_t Load(const std::uint64_t* addr) override {
    return tm_->Read(addr);
  }
  void Store(std::uint64_t* addr, std::uint64_t value) override {
    tm_->Write(tid_, addr, value);
  }
  void InitStore(std::uint64_t* addr, std::uint64_t value) override {
    // Off-line initialization: persistent via non-temporal store, no undo
    // information needed (the memory is unreachable until published by a
    // logged Store).
    tm_->nvm()->StoreNT(addr, value);
  }
  void PublishInit(void*, std::size_t) override { tm_->nvm()->Fence(); }

  void BeginOp() override { tid_ = tm_->Begin(); }
  void CommitOp() override { tm_->Commit(tid_); }
  void AbortOp() override { tm_->Rollback(tid_); }

  std::uint32_t tid() const { return tid_; }
  TransactionManager* tm() { return tm_; }

 private:
  TransactionManager* tm_;
  std::uint32_t tid_ = 0;
};

}  // namespace rwd

#endif  // REWIND_STRUCTURES_STORAGE_OPS_H_
