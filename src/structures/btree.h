// In-memory B+-tree over a pluggable persistence layer (paper Section 5.2).
#ifndef REWIND_STRUCTURES_BTREE_H_
#define REWIND_STRUCTURES_BTREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/structures/storage_ops.h"

namespace rwd {

/// A B+-tree mapping 64-bit keys to fixed 32-byte payloads, written entirely
/// against the word-granularity StorageOps interface so that the identical
/// structure runs on DRAM (volatile), NVM (persistent, non-recoverable),
/// REWIND (recoverable) and the baseline engines.
///
/// Mutations are single recoverable operations: callers wrap them in
/// BeginOp()/CommitOp() themselves when composing larger transactions (as
/// TPC-C does), or use the *Txn convenience wrappers for one-op
/// transactions.
///
/// Deletion is lazy: a leaf may underflow, an empty leaf is unlinked from
/// its parent, and a root with a single child collapses. Separator keys may
/// go stale, which only affects routing, never correctness. This is a
/// common production simplification and keeps the logged write sequences
/// (shifts, splits, unlinks) representative of the paper's workload.
class BTree {
  struct Node;  // private; forward-declared for Cursor below

 public:
  /// 32-byte records, as in the paper's B+-tree experiments.
  static constexpr std::size_t kPayloadWords = 4;
  static constexpr std::size_t kPayloadBytes = kPayloadWords * 8;
  /// Maximum keys per node.
  static constexpr std::uint64_t kFanout = 32;

  /// Creates an empty tree; the header and root leaf are allocated from
  /// `ops`.
  explicit BTree(StorageOps* ops);

  /// Re-attaches to the persistent header of a tree a previous process
  /// built in a durable heap (see persistent_anchor(); typically found via
  /// the heap's root catalog). No allocation, no writes.
  explicit BTree(void* existing_header)
      : header_(static_cast<Header*>(existing_header)) {}

  /// The tree's persistent anchor, for the heap's root catalog or an
  /// application directory block (e.g. RewindKV's shard directory).
  void* persistent_anchor() const { return header_; }

  /// Inserts key -> payload. Returns false (and changes nothing) when the
  /// key already exists. Not itself a transaction.
  bool Insert(StorageOps* ops, std::uint64_t key, const void* payload);

  /// Removes a key. Returns false when absent. Not itself a transaction.
  bool Remove(StorageOps* ops, std::uint64_t key);

  /// Copies the payload into `payload_out` (may be null). Returns presence.
  bool Lookup(StorageOps* ops, std::uint64_t key, void* payload_out) const;

  /// Overwrites one 8-byte word of an existing payload in place (a logged
  /// critical update). Returns false when the key is absent.
  bool UpdatePayloadWord(StorageOps* ops, std::uint64_t key,
                         std::size_t word_idx, std::uint64_t value);

  /// Overwrites the first `n` payload words (n <= kPayloadWords) of an
  /// existing key in ONE descent — the overwrite fast path for callers like
  /// RewindKV that swing a value pointer and its size together. Returns
  /// false when the key is absent.
  bool UpdatePayloadWords(StorageOps* ops, std::uint64_t key,
                          const std::uint64_t* words, std::size_t n);

  /// One-transaction wrappers.
  bool InsertTxn(StorageOps* ops, std::uint64_t key, const void* payload);
  bool RemoveTxn(StorageOps* ops, std::uint64_t key);

  /// In-order scan of (key, payload) pairs starting at `from_key`; stops
  /// when `fn` returns false.
  void Scan(StorageOps* ops, std::uint64_t from_key,
            const std::function<bool(std::uint64_t, const void*)>& fn) const;

  /// Bounded in-order scan over [from_key, to_key]: visits at most `limit`
  /// pairs (0 = unlimited), stopping early when `fn` returns false. Returns
  /// the number of pairs visited. This is the key-iteration primitive range
  /// queries (RewindKV Scan, YCSB workload E) build on.
  std::uint64_t ScanRange(
      StorageOps* ops, std::uint64_t from_key, std::uint64_t to_key,
      std::uint64_t limit,
      const std::function<bool(std::uint64_t, const void*)>& fn) const;

  /// An incremental position in the leaf chain: the pull-based counterpart
  /// of ScanRange, built for k-way merges across trees (RewindKV's
  /// hash-layout scan pulls the minimum head among per-shard cursors, one
  /// item at a time, instead of materializing every shard's prefix).
  /// Valid only while the caller excludes writers of this tree (shared
  /// latch at the RewindKV layer); Seek/Next go through `ops` like every
  /// other read.
  class Cursor {
   public:
    Cursor() = default;
    bool Valid() const { return node_ != nullptr; }
    std::uint64_t key() const { return key_; }
    /// The 32-byte payload block of the current key.
    const void* payload() const { return payload_; }
    /// Advances to the next key in order; Valid() goes false at the end.
    void Next(StorageOps* ops);

   private:
    friend class BTree;
    /// Loads (key, payload) at node_/idx_, hopping exhausted leaves.
    void Settle(StorageOps* ops);
    Node* node_ = nullptr;
    std::uint64_t idx_ = 0;
    std::uint64_t key_ = 0;
    const void* payload_ = nullptr;
  };

  /// Positions a cursor at the first key >= from_key (invalid when none).
  Cursor Seek(StorageOps* ops, std::uint64_t from_key) const;

  /// Latch-free bounded snapshot of the leaf range starting at `from_key`:
  /// descends and walks the chain with RELAXED word loads — no logging, no
  /// transaction manager, safe to race writers — collecting up to
  /// `max_items` (key, payload_block) pairs into `*out`. The caller MUST
  /// validate a seqlock (or equivalent) afterwards and discard the result
  /// on conflict: under a race the snapshot can be torn in every way
  /// (stale keys, recycled pointers, garbage counts). Depth and leaf hops
  /// are bounded so a torn `next` pointer cannot cycle forever. Returns
  /// false when the walk aborted on an insane node or exhausted its hop
  /// budget — the caller falls back to the latched path (a false return
  /// with a clean seqlock can only mean the budget, not corruption).
  bool SnapshotRangeRelaxed(
      std::uint64_t from_key, std::uint64_t max_items,
      std::vector<std::pair<std::uint64_t, const std::uint64_t*>>* out) const;

  std::uint64_t size(StorageOps* ops) const {
    return ops->Load(&header_->size);
  }

  /// Validates key order along the leaf chain and child counts; for tests.
  bool CheckInvariants(StorageOps* ops) const;

 private:
  struct Node {
    std::uint64_t is_leaf;
    std::uint64_t count;  // keys in use
    std::uint64_t next;   // leaf chain
    std::uint64_t keys[kFanout];
    // Leaf: ptrs[i] = payload of keys[i]. Internal: ptrs[0..count] children.
    std::uint64_t ptrs[kFanout + 1];
  };
  struct Header {
    std::uint64_t root;
    std::uint64_t size;
  };

  Node* NewNode(StorageOps* ops, bool leaf) const;
  Node* Root(StorageOps* ops) const {
    return reinterpret_cast<Node*>(ops->Load(&header_->root));
  }
  Node* FindLeaf(StorageOps* ops, std::uint64_t key) const;

  /// Returns true if inserted; sets *split_key/*split_node when the node
  /// split and the parent must absorb a new separator.
  bool InsertRec(StorageOps* ops, Node* node, std::uint64_t key,
                 const void* payload, std::uint64_t* split_key,
                 Node** split_node);
  /// Returns true if removed; sets *emptied when `node` has become empty
  /// and the parent should unlink it.
  bool RemoveRec(StorageOps* ops, Node* node, std::uint64_t key,
                 bool* emptied);
  /// Inserts (key, child) into an internal node at `pos` (after splitting
  /// if needed); same split-out contract as InsertRec.
  void InsertIntoInternal(StorageOps* ops, Node* node, std::uint64_t key,
                          Node* child, std::uint64_t* split_key,
                          Node** split_node);
  Node* SplitNode(StorageOps* ops, Node* node, std::uint64_t* split_key);

  Header* header_;
};

}  // namespace rwd

#endif  // REWIND_STRUCTURES_BTREE_H_
