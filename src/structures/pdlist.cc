#include "src/structures/pdlist.h"

namespace rwd {

namespace {
std::uint64_t AsWord(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}
}  // namespace

PDList::PDList(StorageOps* ops) {
  anchor_ = static_cast<Anchor*>(ops->AllocRaw(sizeof(Anchor)));
  ops->InitStore(&anchor_->head, 0);
  ops->InitStore(&anchor_->tail, 0);
  ops->PublishInit(anchor_, sizeof(Anchor));
}

PDList::Node* PDList::PushBack(StorageOps* ops, std::uint64_t value) {
  ops->BeginOp();
  auto* n = static_cast<Node*>(ops->AllocRaw(sizeof(Node)));
  // Off-line initialization of the unreachable node, then the barrier that
  // makes it persistent before the logged links publish it.
  Node* old_tail = tail(ops);
  ops->InitStore(&n->value, value);
  ops->InitStore(reinterpret_cast<std::uint64_t*>(&n->next), 0);
  ops->InitStore(reinterpret_cast<std::uint64_t*>(&n->prv), AsWord(old_tail));
  ops->PublishInit(n, sizeof(Node));
  if (old_tail != nullptr) {
    ops->Store(reinterpret_cast<std::uint64_t*>(&old_tail->next), AsWord(n));
  } else {
    ops->Store(&anchor_->head, AsWord(n));
  }
  ops->Store(&anchor_->tail, AsWord(n));
  ops->CommitOp();
  return n;
}

PDList::Node* PDList::PushFront(StorageOps* ops, std::uint64_t value) {
  ops->BeginOp();
  auto* n = static_cast<Node*>(ops->AllocRaw(sizeof(Node)));
  Node* old_head = head(ops);
  ops->InitStore(&n->value, value);
  ops->InitStore(reinterpret_cast<std::uint64_t*>(&n->next),
                 AsWord(old_head));
  ops->InitStore(reinterpret_cast<std::uint64_t*>(&n->prv), 0);
  ops->PublishInit(n, sizeof(Node));
  if (old_head != nullptr) {
    ops->Store(reinterpret_cast<std::uint64_t*>(&old_head->prv), AsWord(n));
  } else {
    ops->Store(&anchor_->tail, AsWord(n));
  }
  ops->Store(&anchor_->head, AsWord(n));
  ops->CommitOp();
  return n;
}

void PDList::Remove(StorageOps* ops, Node* n) {
  // Listing 1/2: four critical updates, each preceded by its log call
  // (performed inside ops->Store), then commit, then the deferred delete.
  ops->BeginOp();
  Node* nxt = reinterpret_cast<Node*>(
      ops->Load(reinterpret_cast<std::uint64_t*>(&n->next)));
  Node* prv = reinterpret_cast<Node*>(
      ops->Load(reinterpret_cast<std::uint64_t*>(&n->prv)));
  if (tail(ops) == n) ops->Store(&anchor_->tail, AsWord(prv));
  if (head(ops) == n) ops->Store(&anchor_->head, AsWord(nxt));
  if (prv != nullptr) {
    ops->Store(reinterpret_cast<std::uint64_t*>(&prv->next), AsWord(nxt));
  }
  if (nxt != nullptr) {
    ops->Store(reinterpret_cast<std::uint64_t*>(&nxt->prv), AsWord(prv));
  }
  ops->DeferredFree(n);
  ops->CommitOp();
}

PDList::Node* PDList::Find(StorageOps* ops, std::uint64_t value) const {
  for (Node* n = head(ops); n != nullptr;
       n = reinterpret_cast<Node*>(
           ops->Load(reinterpret_cast<std::uint64_t*>(&n->next)))) {
    if (ops->Load(&n->value) == value) return n;
  }
  return nullptr;
}

void PDList::ForEach(StorageOps* ops,
                     const std::function<void(std::uint64_t)>& fn) const {
  for (Node* n = head(ops); n != nullptr;
       n = reinterpret_cast<Node*>(
           ops->Load(reinterpret_cast<std::uint64_t*>(&n->next)))) {
    fn(ops->Load(&n->value));
  }
}

std::size_t PDList::Size(StorageOps* ops) const {
  std::size_t n = 0;
  ForEach(ops, [&](std::uint64_t) { ++n; });
  return n;
}

}  // namespace rwd
