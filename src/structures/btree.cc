#include "src/structures/btree.h"

#include <cstring>

#include "src/nvm/atomic_mem.h"

namespace rwd {

namespace {
std::uint64_t AsWord(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}
}  // namespace

BTree::BTree(StorageOps* ops) {
  header_ = static_cast<Header*>(ops->AllocRaw(sizeof(Header)));
  Node* root = NewNode(ops, /*leaf=*/true);
  ops->InitStore(&header_->root, AsWord(root));
  ops->InitStore(&header_->size, 0);
  ops->PublishInit(header_, sizeof(Header));
}

BTree::Node* BTree::NewNode(StorageOps* ops, bool leaf) const {
  auto* n = static_cast<Node*>(ops->AllocRaw(sizeof(Node)));
  ops->InitStore(&n->is_leaf, leaf ? 1 : 0);
  ops->InitStore(&n->count, 0);
  ops->InitStore(&n->next, 0);
  return n;  // caller publishes (PublishInit) once fully initialized
}

BTree::Node* BTree::FindLeaf(StorageOps* ops, std::uint64_t key) const {
  Node* n = Root(ops);
  while (ops->Load(&n->is_leaf) == 0) {
    std::uint64_t cnt = ops->Load(&n->count);
    std::uint64_t idx = 0;
    while (idx < cnt && key >= ops->Load(&n->keys[idx])) ++idx;
    n = reinterpret_cast<Node*>(ops->Load(&n->ptrs[idx]));
  }
  return n;
}

BTree::Node* BTree::SplitNode(StorageOps* ops, Node* node,
                              std::uint64_t* split_key) {
  std::uint64_t cnt = ops->Load(&node->count);
  bool leaf = ops->Load(&node->is_leaf) != 0;
  Node* right = NewNode(ops, leaf);
  if (leaf) {
    // Right sibling takes the upper half; the separator is its first key.
    std::uint64_t half = cnt / 2;
    for (std::uint64_t i = half; i < cnt; ++i) {
      ops->InitStore(&right->keys[i - half], ops->Load(&node->keys[i]));
      ops->InitStore(&right->ptrs[i - half], ops->Load(&node->ptrs[i]));
    }
    ops->InitStore(&right->count, cnt - half);
    ops->InitStore(&right->next, ops->Load(&node->next));
    ops->PublishInit(right, sizeof(Node));
    *split_key = ops->Load(&right->keys[0]);
    // Publish with logged critical updates on the surviving node.
    ops->Store(&node->count, half);
    ops->Store(&node->next, AsWord(right));
  } else {
    // The middle key moves up; the right sibling takes keys above it.
    std::uint64_t mid = cnt / 2;
    *split_key = ops->Load(&node->keys[mid]);
    for (std::uint64_t i = mid + 1; i < cnt; ++i) {
      ops->InitStore(&right->keys[i - mid - 1], ops->Load(&node->keys[i]));
    }
    for (std::uint64_t i = mid + 1; i <= cnt; ++i) {
      ops->InitStore(&right->ptrs[i - mid - 1], ops->Load(&node->ptrs[i]));
    }
    ops->InitStore(&right->count, cnt - mid - 1);
    ops->PublishInit(right, sizeof(Node));
    ops->Store(&node->count, mid);
  }
  return right;
}

void BTree::InsertIntoInternal(StorageOps* ops, Node* node,
                               std::uint64_t key, Node* child,
                               std::uint64_t* split_key, Node** split_node) {
  std::uint64_t cnt = ops->Load(&node->count);
  if (cnt == kFanout) {
    std::uint64_t sk = 0;
    Node* right = SplitNode(ops, node, &sk);
    Node* target = key < sk ? node : right;
    std::uint64_t ignored_k = 0;
    Node* ignored_n = nullptr;
    InsertIntoInternal(ops, target, key, child, &ignored_k, &ignored_n);
    *split_key = sk;
    *split_node = right;
    return;
  }
  std::uint64_t pos = 0;
  while (pos < cnt && key >= ops->Load(&node->keys[pos])) ++pos;
  for (std::uint64_t i = cnt; i > pos; --i) {
    ops->Store(&node->keys[i], ops->Load(&node->keys[i - 1]));
    ops->Store(&node->ptrs[i + 1], ops->Load(&node->ptrs[i]));
  }
  ops->Store(&node->keys[pos], key);
  ops->Store(&node->ptrs[pos + 1], AsWord(child));
  ops->Store(&node->count, cnt + 1);
}

bool BTree::InsertRec(StorageOps* ops, Node* node, std::uint64_t key,
                      const void* payload, std::uint64_t* split_key,
                      Node** split_node) {
  if (ops->Load(&node->is_leaf) != 0) {
    std::uint64_t cnt = ops->Load(&node->count);
    std::uint64_t pos = 0;
    while (pos < cnt && ops->Load(&node->keys[pos]) < key) ++pos;
    if (pos < cnt && ops->Load(&node->keys[pos]) == key) return false;
    if (cnt == kFanout) {
      std::uint64_t sk = 0;
      Node* right = SplitNode(ops, node, &sk);
      Node* target = key < sk ? node : right;
      std::uint64_t ignored_k = 0;
      Node* ignored_n = nullptr;
      InsertRec(ops, target, key, payload, &ignored_k, &ignored_n);
      *split_key = sk;
      *split_node = right;
      return true;
    }
    // Store the 32-byte payload in its own block, initialized off-line.
    auto* blk = static_cast<std::uint64_t*>(ops->AllocRaw(kPayloadBytes));
    const auto* src = static_cast<const std::uint64_t*>(payload);
    for (std::size_t w = 0; w < kPayloadWords; ++w) {
      ops->InitStore(&blk[w], src != nullptr ? src[w] : 0);
    }
    ops->PublishInit(blk, kPayloadBytes);
    // Logged shift-and-insert: this is where REWIND's physical logging
    // emits one record per moved word (paper Section 1).
    for (std::uint64_t i = cnt; i > pos; --i) {
      ops->Store(&node->keys[i], ops->Load(&node->keys[i - 1]));
      ops->Store(&node->ptrs[i], ops->Load(&node->ptrs[i - 1]));
    }
    ops->Store(&node->keys[pos], key);
    ops->Store(&node->ptrs[pos], AsWord(blk));
    ops->Store(&node->count, cnt + 1);
    return true;
  }
  std::uint64_t cnt = ops->Load(&node->count);
  std::uint64_t idx = 0;
  while (idx < cnt && key >= ops->Load(&node->keys[idx])) ++idx;
  auto* child = reinterpret_cast<Node*>(ops->Load(&node->ptrs[idx]));
  std::uint64_t csk = 0;
  Node* csn = nullptr;
  if (!InsertRec(ops, child, key, payload, &csk, &csn)) return false;
  if (csn != nullptr) {
    InsertIntoInternal(ops, node, csk, csn, split_key, split_node);
  }
  return true;
}

bool BTree::Insert(StorageOps* ops, std::uint64_t key, const void* payload) {
  Node* root = Root(ops);
  std::uint64_t sk = 0;
  Node* sn = nullptr;
  if (!InsertRec(ops, root, key, payload, &sk, &sn)) return false;
  if (sn != nullptr) {
    Node* new_root = NewNode(ops, /*leaf=*/false);
    ops->InitStore(&new_root->count, 1);
    ops->InitStore(&new_root->keys[0], sk);
    ops->InitStore(&new_root->ptrs[0], AsWord(root));
    ops->InitStore(&new_root->ptrs[1], AsWord(sn));
    ops->PublishInit(new_root, sizeof(Node));
    ops->Store(&header_->root, AsWord(new_root));
  }
  ops->Store(&header_->size, ops->Load(&header_->size) + 1);
  return true;
}

bool BTree::Remove(StorageOps* ops, std::uint64_t key) {
  Node* leaf = FindLeaf(ops, key);
  std::uint64_t cnt = ops->Load(&leaf->count);
  std::uint64_t pos = 0;
  while (pos < cnt && ops->Load(&leaf->keys[pos]) < key) ++pos;
  if (pos == cnt || ops->Load(&leaf->keys[pos]) != key) return false;
  ops->DeferredFree(reinterpret_cast<void*>(ops->Load(&leaf->ptrs[pos])));
  for (std::uint64_t i = pos + 1; i < cnt; ++i) {
    ops->Store(&leaf->keys[i - 1], ops->Load(&leaf->keys[i]));
    ops->Store(&leaf->ptrs[i - 1], ops->Load(&leaf->ptrs[i]));
  }
  ops->Store(&leaf->count, cnt - 1);
  ops->Store(&header_->size, ops->Load(&header_->size) - 1);
  return true;
}

bool BTree::Lookup(StorageOps* ops, std::uint64_t key,
                   void* payload_out) const {
  Node* leaf = FindLeaf(ops, key);
  std::uint64_t cnt = ops->Load(&leaf->count);
  for (std::uint64_t i = 0; i < cnt; ++i) {
    if (ops->Load(&leaf->keys[i]) == key) {
      if (payload_out != nullptr) {
        auto* blk =
            reinterpret_cast<std::uint64_t*>(ops->Load(&leaf->ptrs[i]));
        auto* dst = static_cast<std::uint64_t*>(payload_out);
        for (std::size_t w = 0; w < kPayloadWords; ++w) {
          dst[w] = ops->Load(&blk[w]);
        }
      }
      return true;
    }
  }
  return false;
}

bool BTree::UpdatePayloadWord(StorageOps* ops, std::uint64_t key,
                              std::size_t word_idx, std::uint64_t value) {
  Node* leaf = FindLeaf(ops, key);
  std::uint64_t cnt = ops->Load(&leaf->count);
  for (std::uint64_t i = 0; i < cnt; ++i) {
    if (ops->Load(&leaf->keys[i]) == key) {
      auto* blk = reinterpret_cast<std::uint64_t*>(ops->Load(&leaf->ptrs[i]));
      ops->Store(&blk[word_idx], value);
      return true;
    }
  }
  return false;
}

bool BTree::UpdatePayloadWords(StorageOps* ops, std::uint64_t key,
                               const std::uint64_t* words, std::size_t n) {
  Node* leaf = FindLeaf(ops, key);
  std::uint64_t cnt = ops->Load(&leaf->count);
  for (std::uint64_t i = 0; i < cnt; ++i) {
    if (ops->Load(&leaf->keys[i]) == key) {
      auto* blk = reinterpret_cast<std::uint64_t*>(ops->Load(&leaf->ptrs[i]));
      for (std::size_t w = 0; w < n; ++w) ops->Store(&blk[w], words[w]);
      return true;
    }
  }
  return false;
}

bool BTree::InsertTxn(StorageOps* ops, std::uint64_t key,
                      const void* payload) {
  ops->BeginOp();
  bool ok = Insert(ops, key, payload);
  ops->CommitOp();
  return ok;
}

bool BTree::RemoveTxn(StorageOps* ops, std::uint64_t key) {
  ops->BeginOp();
  bool ok = Remove(ops, key);
  ops->CommitOp();
  return ok;
}

void BTree::Scan(
    StorageOps* ops, std::uint64_t from_key,
    const std::function<bool(std::uint64_t, const void*)>& fn) const {
  ScanRange(ops, from_key, ~std::uint64_t{0}, 0, fn);
}

std::uint64_t BTree::ScanRange(
    StorageOps* ops, std::uint64_t from_key, std::uint64_t to_key,
    std::uint64_t limit,
    const std::function<bool(std::uint64_t, const void*)>& fn) const {
  std::uint64_t visited = 0;
  Node* leaf = FindLeaf(ops, from_key);
  while (leaf != nullptr) {
    std::uint64_t cnt = ops->Load(&leaf->count);
    for (std::uint64_t i = 0; i < cnt; ++i) {
      std::uint64_t k = ops->Load(&leaf->keys[i]);
      if (k < from_key) continue;
      if (k > to_key) return visited;
      ++visited;
      if (!fn(k, reinterpret_cast<const void*>(ops->Load(&leaf->ptrs[i]))) ||
          visited == limit) {
        return visited;
      }
    }
    leaf = reinterpret_cast<Node*>(ops->Load(&leaf->next));
  }
  return visited;
}

void BTree::Cursor::Settle(StorageOps* ops) {
  while (node_ != nullptr) {
    std::uint64_t cnt = ops->Load(&node_->count);
    if (idx_ < cnt) {
      key_ = ops->Load(&node_->keys[idx_]);
      payload_ = reinterpret_cast<const void*>(ops->Load(&node_->ptrs[idx_]));
      return;
    }
    node_ = reinterpret_cast<Node*>(ops->Load(&node_->next));
    idx_ = 0;
  }
  payload_ = nullptr;
}

void BTree::Cursor::Next(StorageOps* ops) {
  ++idx_;
  Settle(ops);
}

BTree::Cursor BTree::Seek(StorageOps* ops, std::uint64_t from_key) const {
  Cursor c;
  c.node_ = FindLeaf(ops, from_key);
  // Skip keys below from_key within the landing leaf (stale separators can
  // route the descent one leaf early; Settle's chain hop covers the rest).
  std::uint64_t cnt = ops->Load(&c.node_->count);
  while (c.idx_ < cnt && ops->Load(&c.node_->keys[c.idx_]) < from_key) {
    ++c.idx_;
  }
  c.Settle(ops);
  return c;
}

bool BTree::SnapshotRangeRelaxed(
    std::uint64_t from_key, std::uint64_t max_items,
    std::vector<std::pair<std::uint64_t, const std::uint64_t*>>* out) const {
  // Everything below reads racily-mutable words with RelaxedLoad64 and
  // trusts nothing: bounds on descent depth and leaf hops, a sanity cap on
  // counts. The caller's seqlock validation is the only correctness check.
  auto* root =
      reinterpret_cast<Node*>(RelaxedLoad64(&header_->root));
  Node* n = root;
  for (int depth = 0; n != nullptr && RelaxedLoad64(&n->is_leaf) == 0;
       ++depth) {
    if (depth > 64) return false;  // torn pointers formed a cycle
    std::uint64_t cnt = RelaxedLoad64(&n->count);
    if (cnt > kFanout) return false;
    std::uint64_t idx = 0;
    while (idx < cnt && from_key >= RelaxedLoad64(&n->keys[idx])) ++idx;
    n = reinterpret_cast<Node*>(RelaxedLoad64(&n->ptrs[idx]));
  }
  // Hop budget: a stable tree with half-full leaves needs ~max_items/16
  // hops; anything far beyond that is a racy cycle, not data.
  std::uint64_t hops = 8 + max_items / 4;
  while (n != nullptr && out->size() < max_items) {
    if (hops-- == 0) return false;
    std::uint64_t cnt = RelaxedLoad64(&n->count);
    if (cnt > kFanout) return false;
    for (std::uint64_t i = 0; i < cnt && out->size() < max_items; ++i) {
      std::uint64_t k = RelaxedLoad64(&n->keys[i]);
      if (k < from_key) continue;
      out->emplace_back(
          k, reinterpret_cast<const std::uint64_t*>(
                 RelaxedLoad64(&n->ptrs[i])));
    }
    n = reinterpret_cast<Node*>(RelaxedLoad64(&n->next));
  }
  return true;
}

bool BTree::CheckInvariants(StorageOps* ops) const {
  // Leaf-chain keys strictly ascending and their number equal to size.
  Node* n = Root(ops);
  while (ops->Load(&n->is_leaf) == 0) {
    n = reinterpret_cast<Node*>(ops->Load(&n->ptrs[0]));
  }
  std::uint64_t prev = 0;
  bool first = true;
  std::uint64_t total = 0;
  while (n != nullptr) {
    std::uint64_t cnt = ops->Load(&n->count);
    if (cnt > kFanout) return false;
    for (std::uint64_t i = 0; i < cnt; ++i) {
      std::uint64_t k = ops->Load(&n->keys[i]);
      if (!first && k <= prev) return false;
      prev = k;
      first = false;
      ++total;
    }
    n = reinterpret_cast<Node*>(ops->Load(&n->next));
  }
  return total == ops->Load(&header_->size);
}

}  // namespace rwd
