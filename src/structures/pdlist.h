// The paper's running example (Listings 1 and 2): a recoverable persistent
// doubly-linked list whose critical updates are WAL-logged through REWIND.
#ifndef REWIND_STRUCTURES_PDLIST_H_
#define REWIND_STRUCTURES_PDLIST_H_

#include <cstdint>
#include <functional>

#include "src/structures/storage_ops.h"

namespace rwd {

/// A persistent doubly-linked list of 64-bit values.
///
/// Each mutation is one recoverable operation: `persistent_atomic { ... }`
/// in the paper's notation, expanded here the way Listing 2 expands
/// Listing 1 — a transaction id from the manager, a log call before each
/// critical CPU write, commit at the end, and node de-allocation deferred
/// past commit via DELETE records.
class PDList {
 public:
  struct Node {
    std::uint64_t value;
    Node* next;
    Node* prv;
  };

  /// Creates an empty list whose anchor (head/tail words) lives in storage
  /// allocated from `ops`.
  explicit PDList(StorageOps* ops);

  /// Re-attaches to the persistent anchor of a list a previous process
  /// built in a durable heap (see persistent_anchor()).
  explicit PDList(void* existing_anchor)
      : anchor_(static_cast<Anchor*>(existing_anchor)) {}

  /// The list's persistent anchor, for the heap's root catalog.
  void* persistent_anchor() const { return anchor_; }

  /// Appends a value at the tail inside its own transaction.
  Node* PushBack(StorageOps* ops, std::uint64_t value);

  /// Prepends a value at the head inside its own transaction.
  Node* PushFront(StorageOps* ops, std::uint64_t value);

  /// The paper's Listing 1: unlinks `n` and (deferred-)frees it, inside its
  /// own transaction.
  void Remove(StorageOps* ops, Node* n);

  /// First node holding `value`, or null.
  Node* Find(StorageOps* ops, std::uint64_t value) const;

  /// Visits values front to back.
  void ForEach(StorageOps* ops,
               const std::function<void(std::uint64_t)>& fn) const;

  std::size_t Size(StorageOps* ops) const;

  Node* head(StorageOps* ops) const {
    return reinterpret_cast<Node*>(ops->Load(&anchor_->head));
  }
  Node* tail(StorageOps* ops) const {
    return reinterpret_cast<Node*>(ops->Load(&anchor_->tail));
  }

 private:
  struct Anchor {
    std::uint64_t head;
    std::uint64_t tail;
  };

  Anchor* anchor_;
};

}  // namespace rwd

#endif  // REWIND_STRUCTURES_PDLIST_H_
