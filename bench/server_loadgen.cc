// Network load generator for RewindServe: drives a running kv_server with
// the YCSB-style A-F mixes over pipelined connections and reports
// client-observed throughput and latency percentiles.
//
//   ./build/examples/kv_server --port=7170 &
//   ./build/bench/server_loadgen --port=7170 --workload=a --threads=4
//
// Flags: --host=IP  --port=N  --workload=a..f|w  --threads=N  --records=N
//        --ops=N  --value-size=BYTES  --pipeline=N (in-flight reqs/conn)
//        --skip-load=1 (reuse an already-loaded server)
//        --stream-scans=1 (run scans via SCAN_STREAM: chunked, never
//        truncated; each scan drains its connection's pipeline first)
//        --max-scan-len=N (scan-length ceiling for workload e's zipfian
//        length draw)
//        --json=PATH (machine-readable results: ops/s, p50/p99, config)
//        --read-from-follower=PORT (RewindRepl read scale-out: odd driver
//        threads read from the follower at --host:PORT; the run starts
//        only after the follower's key count catches the leader's. Use
//        with read-dominated mixes — workload c.)
//        --failover-port=PORT --max-reconnects=N (RewindGuard failover
//        ride-through: a dropped connection or a fenced leader makes the
//        driver reconnect — toward the kNotLeader redirect hint, else
//        alternating --port/--failover-port — up to N times per
//        connection instead of failing the run)
// REWIND_BENCH_SCALE scales --records/--ops defaults like the other
// benches. Exits nonzero when the server is unreachable or no operation
// completed, so smoke tests can assert on the exit code alone.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/server/client.h"
#include "src/workload/net_driver.h"
#include "src/workload/workload.h"

namespace rwd {
namespace {

int Main(int argc, char** argv) {
  char workload = WorkloadFlag(argc, argv);
  WorkloadSpec spec = WorkloadSpec::Preset(workload);
  spec.record_count = FlagOr(argc, argv, "records", Scaled(20000));
  spec.op_count = FlagOr(argc, argv, "ops", Scaled(50000));
  spec.value_size = FlagOr(argc, argv, "value-size", 100);
  spec.threads = FlagOr(argc, argv, "threads", 4);
  spec.max_scan_len = FlagOr(argc, argv, "max-scan-len", spec.max_scan_len);
  spec.collect_latencies = true;

  NetDriverSpec net;
  net.host = StringFlag(argc, argv, "host", "127.0.0.1");
  net.port = static_cast<std::uint16_t>(FlagOr(argc, argv, "port", 7170));
  net.pipeline_depth = FlagOr(argc, argv, "pipeline", 16);
  net.follower_port = static_cast<std::uint16_t>(
      FlagOr(argc, argv, "read-from-follower", 0));
  net.stream_scans = FlagOr(argc, argv, "stream-scans", 0) != 0;
  net.failover_port = static_cast<std::uint16_t>(
      FlagOr(argc, argv, "failover-port", 0));
  net.max_reconnects = static_cast<std::uint32_t>(
      FlagOr(argc, argv, "max-reconnects",
             net.failover_port != 0 ? 8 : 0));
  bool skip_load = FlagOr(argc, argv, "skip-load", 0) != 0;
  std::string json_path = StringFlag(argc, argv, "json");

  std::printf("# server_loadgen %s:%u workload=%c threads=%zu pipeline=%zu "
              "records=%lu ops=%lu value=%zuB%s\n",
              net.host.c_str(), net.port, workload, spec.threads,
              net.pipeline_depth,
              static_cast<unsigned long>(spec.record_count),
              static_cast<unsigned long>(spec.op_count), spec.value_size,
              net.stream_scans ? " stream-scans" : "");

  NetWorkloadDriver driver(net, spec);
  if (skip_load) {
    // The key space is assumed loaded; seed the choosers' ceiling and
    // check the server is actually there.
    serve::KvClient probe;
    if (!probe.Connect(net.host, net.port)) {
      std::fprintf(stderr, "cannot reach %s:%u\n", net.host.c_str(),
                   net.port);
      return 1;
    }
    driver.AssumeLoaded();
  } else {
    Timer load_timer;
    std::uint64_t loaded = driver.Load();
    if (loaded == 0) {
      std::fprintf(stderr, "load failed: cannot reach %s:%u\n",
                   net.host.c_str(), net.port);
      return 1;
    }
    double load_s = load_timer.Seconds();
    std::printf("# load: %lu keys in %.3f s (%.0f keys/s)\n",
                static_cast<unsigned long>(loaded), load_s,
                static_cast<double>(loaded) / load_s);
  }

  if (net.follower_port != 0) {
    // Let replication catch up before timing reads against the follower:
    // poll until its key count matches the leader's (bounded wait).
    serve::KvClient leader, follower;
    if (!leader.Connect(net.host, net.port) ||
        !follower.Connect(net.host, net.follower_port)) {
      std::fprintf(stderr, "cannot reach follower %s:%u\n", net.host.c_str(),
                   net.follower_port);
      return 1;
    }
    serve::StatsReply ls{}, fs{};
    bool caught_up = false;
    for (int i = 0; i < 200; ++i) {  // up to ~20 s
      if (leader.Stats(&ls) && follower.Stats(&fs) && fs.keys >= ls.keys) {
        caught_up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!caught_up) {
      std::fprintf(stderr, "follower never caught up (leader=%lu "
                   "follower=%lu keys)\n",
                   static_cast<unsigned long>(ls.keys),
                   static_cast<unsigned long>(fs.keys));
      return 1;
    }
    std::printf("# follower %s:%u caught up (%lu keys); odd threads read "
                "from it\n",
                net.host.c_str(), net.follower_port,
                static_cast<unsigned long>(fs.keys));
  }

  bool ok = true;
  WorkloadResult r = driver.Run(&ok);
  double p50 = r.LatencyPercentileUs(50);
  double p90 = r.LatencyPercentileUs(90);
  double p99 = r.LatencyPercentileUs(99);
  double p999 = r.LatencyPercentileUs(99.9);
  std::printf("# run: %lu ops in %.3f s (%.0f ops/s) — reads=%lu "
              "(misses=%lu) updates=%lu inserts=%lu scans=%lu (items=%lu) "
              "rmw=%lu%s\n",
              static_cast<unsigned long>(r.ops()), r.seconds,
              r.throughput(), static_cast<unsigned long>(r.reads),
              static_cast<unsigned long>(r.read_misses),
              static_cast<unsigned long>(r.updates),
              static_cast<unsigned long>(r.inserts),
              static_cast<unsigned long>(r.scans),
              static_cast<unsigned long>(r.scanned_items),
              static_cast<unsigned long>(r.rmws),
              ok ? "" : " [connection errors]");
  if (r.mputs != 0) {
    std::printf("# run: mputs=%lu (keys=%lu)\n",
                static_cast<unsigned long>(r.mputs),
                static_cast<unsigned long>(r.mput_keys));
  }
  std::printf("# latency: p50=%.1fus p99=%.1fus over %zu samples\n", p50,
              p99, r.latencies_us.size());

  serve::StatsReply stats{};
  serve::KvClient stats_client;
  if (stats_client.Connect(net.host, net.port) &&
      stats_client.Stats(&stats)) {
    std::printf("# server: keys=%lu acked_writes=%lu batches=%lu "
                "(%.1f writes/batch) gets=%lu scans=%lu conns=%lu "
                "shards=%lu\n",
                static_cast<unsigned long>(stats.keys),
                static_cast<unsigned long>(stats.acked_writes),
                static_cast<unsigned long>(stats.batches),
                stats.batches ? static_cast<double>(stats.batched_writes) /
                                    static_cast<double>(stats.batches)
                              : 0.0,
                static_cast<unsigned long>(stats.gets),
                static_cast<unsigned long>(stats.scans),
                static_cast<unsigned long>(stats.connections),
                static_cast<unsigned long>(stats.shards));
    std::uint64_t log_bytes = 0;
    for (std::uint64_t b : stats.shard_log_bytes) log_bytes += b;
    std::printf("# server: batcher_depth=%lu prepared_txns=%lu "
                "log_bytes=%lu heap=%s used_bytes=%lu hwm=%lu\n",
                static_cast<unsigned long>(stats.batcher_depth),
                static_cast<unsigned long>(stats.prepared_txns),
                static_cast<unsigned long>(log_bytes),
                stats.heap_mode != 0 ? "file" : "dram",
                static_cast<unsigned long>(stats.heap_used_bytes),
                static_cast<unsigned long>(stats.heap_high_watermark));
    std::printf("# server read path: optimistic_hits=%lu retries=%lu "
                "latched=%lu; 2pc fan-out: parallel=%lu max_width=%lu\n",
                static_cast<unsigned long>(stats.optimistic_hits),
                static_cast<unsigned long>(stats.optimistic_retries),
                static_cast<unsigned long>(stats.read_latch_acquires),
                static_cast<unsigned long>(stats.parallel_prepares),
                static_cast<unsigned long>(stats.max_prepare_fanout));
  }

  // STATS v2 scrape: the server's own RewindScope latency view (request
  // execution inside the server) alongside the client-observed
  // percentiles above — the gap between them is the network + pipeline
  // queueing.
  std::vector<serve::MetricSample> samples;
  if (stats_client.connected()) stats_client.Stats2(&samples);
  auto metric = [&samples](const char* name) {
    for (const serve::MetricSample& m : samples) {
      if (m.name == name) return m.value;
    }
    return 0.0;
  };
  if (!samples.empty()) {
    std::printf("# server-side latency (STATS v2, %zu metrics): get "
                "p50=%.1fus p99=%.1fus; put p50=%.1fus p99=%.1fus; "
                "txn.prepare p99=%.1fus; batcher.commit p99=%.1fus\n",
                samples.size(), metric("server.op.get.p50_us"),
                metric("server.op.get.p99_us"),
                metric("server.op.put.p50_us"),
                metric("server.op.put.p99_us"),
                metric("txn.prepare.p99_us"),
                metric("batcher.commit.p99_us"));
    if (metric("server.scan_chunks") > 0) {
      std::printf("# server scan stream: chunks=%.0f bytes=%.0f "
                  "first_chunk p50=%.1fus p99=%.1fus; total p50=%.1fus "
                  "p99=%.1fus; optimistic sub-scans hits=%.0f "
                  "retries=%.0f\n",
                  metric("server.scan_chunks"),
                  metric("server.scan_stream_bytes"),
                  metric("server.op.scan_stream.first_chunk.p50_us"),
                  metric("server.op.scan_stream.first_chunk.p99_us"),
                  metric("server.op.scan_stream.p50_us"),
                  metric("server.op.scan_stream.p99_us"),
                  metric("kv.scan_optimistic_hits"),
                  metric("kv.scan_optimistic_retries"));
    }
    std::printf("# server write pipeline: parallel_applies=%.0f "
                "apply_fanout=%.0f pipeline_depth=%.0f window_us=%.0f "
                "presumed_commits=%.0f\n",
                metric("kv.parallel_applies"),
                metric("batcher.apply_fanout"),
                metric("batcher.pipeline_depth"),
                metric("batcher.window_us"),
                metric("txn.presumed_commits"));
  }

  if (!json_path.empty()) {
    JsonObject json;
    json.SetConfigFingerprint(Fnv1a(
        std::string("server_loadgen|") + workload +
        "|threads=" + std::to_string(spec.threads) +
        "|pipeline=" + std::to_string(net.pipeline_depth) +
        "|records=" + std::to_string(spec.record_count) +
        "|value=" + std::to_string(spec.value_size) +
        "|shards=" + std::to_string(stats.shards) +
        "|stream=" + std::to_string(net.stream_scans ? 1 : 0)));
    json.Add("bench", std::string("server_loadgen"));
    json.Add("workload", std::string(1, workload));
    json.Add("host", net.host);
    json.Add("port", static_cast<std::uint64_t>(net.port));
    json.Add("read_from_follower",
             static_cast<std::uint64_t>(net.follower_port));
    json.Add("threads", static_cast<std::uint64_t>(spec.threads));
    json.Add("pipeline", static_cast<std::uint64_t>(net.pipeline_depth));
    json.Add("records", spec.record_count);
    json.Add("value_size", static_cast<std::uint64_t>(spec.value_size));
    json.Add("ops", r.ops());
    json.Add("seconds", r.seconds);
    json.Add("ops_per_s", r.throughput());
    json.Add("p50_us", p50);
    json.Add("p90_us", p90);
    json.Add("p99_us", p99);
    json.Add("p999_us", p999);
    json.Add("reads", r.reads);
    json.Add("read_misses", r.read_misses);
    json.Add("updates", r.updates);
    json.Add("inserts", r.inserts);
    json.Add("scans", r.scans);
    json.Add("scanned_items", r.scanned_items);
    json.Add("stream_scans",
             static_cast<std::uint64_t>(net.stream_scans ? 1 : 0));
    json.Add("server_scan_chunks", metric("server.scan_chunks"));
    json.Add("server_scan_stream_bytes",
             metric("server.scan_stream_bytes"));
    json.Add("server_scan_stream_first_chunk_p50_us",
             metric("server.op.scan_stream.first_chunk.p50_us"));
    json.Add("server_scan_stream_p99_us",
             metric("server.op.scan_stream.p99_us"));
    json.Add("server_scan_optimistic_hits",
             metric("kv.scan_optimistic_hits"));
    json.Add("server_scan_optimistic_retries",
             metric("kv.scan_optimistic_retries"));
    json.Add("rmws", r.rmws);
    json.Add("mputs", r.mputs);
    json.Add("mput_keys", r.mput_keys);
    json.Add("server_acked_writes", stats.acked_writes);
    json.Add("server_batches", stats.batches);
    json.Add("server_shards", stats.shards);
    json.Add("server_batcher_depth", stats.batcher_depth);
    json.Add("server_prepared_txns", stats.prepared_txns);
    json.Add("server_heap_mode",
             std::string(stats.heap_mode != 0 ? "file" : "dram"));
    json.Add("server_heap_used_bytes", stats.heap_used_bytes);
    json.Add("server_heap_high_watermark", stats.heap_high_watermark);
    json.Add("server_optimistic_hits", stats.optimistic_hits);
    json.Add("server_optimistic_retries", stats.optimistic_retries);
    json.Add("server_read_latch_acquires", stats.read_latch_acquires);
    json.Add("server_parallel_prepares", stats.parallel_prepares);
    json.Add("server_max_prepare_fanout", stats.max_prepare_fanout);
    json.Add("server_metrics_count",
             static_cast<std::uint64_t>(samples.size()));
    json.Add("server_get_p50_us", metric("server.op.get.p50_us"));
    json.Add("server_get_p99_us", metric("server.op.get.p99_us"));
    json.Add("server_put_p50_us", metric("server.op.put.p50_us"));
    json.Add("server_put_p99_us", metric("server.op.put.p99_us"));
    json.Add("server_txn_prepare_p99_us", metric("txn.prepare.p99_us"));
    json.Add("server_batcher_commit_p99_us",
             metric("batcher.commit.p99_us"));
    json.Add("server_parallel_applies", metric("kv.parallel_applies"));
    json.Add("server_apply_fanout", metric("batcher.apply_fanout"));
    json.Add("server_pipeline_depth", metric("batcher.pipeline_depth"));
    json.Add("server_window_us", metric("batcher.window_us"));
    json.Add("server_presumed_commits", metric("txn.presumed_commits"));
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# json results -> %s\n", json_path.c_str());
  }
  // Smoke contract: nonzero completed ops and no mid-run connection
  // failures, or the run is a failure.
  return (r.ops() > 0 && ok) ? 0 : 1;
}

}  // namespace
}  // namespace rwd

int main(int argc, char** argv) { return rwd::Main(argc, argv); }
