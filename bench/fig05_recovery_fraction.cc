// Figure 5: total processing cost (logging plus commit or recovery) as a
// function of the fraction of transactions that must be recovered, for the
// one-layer configuration under force and no-force policies and skip-record
// counts of 10, 150 and 300. Log clearing time is factored out, as in the
// paper.
#include <cstdint>

#include "bench/bench_util.h"
#include "src/core/transaction_manager.h"

namespace rwd {
namespace {

constexpr std::size_t kTxns = 40;
constexpr std::size_t kUpdatesPerTxn = 50;
constexpr std::size_t kTableWords = 4096;

double RunOnce(Policy policy, std::size_t skip, double recover_fraction) {
  RewindConfig rc = BenchConfig(LogImpl::kOptimized, Layers::kOne, policy,
                                768);
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  auto* tbl = nvm.AllocArray<std::uint64_t>(kTableWords);
  std::size_t txns = Scaled(kTxns);
  auto to_recover = static_cast<std::size_t>(txns * recover_fraction);
  Timer t;
  // Interleaved transactions: `skip` filler records between each target
  // record, txns committed or left hanging per the recovered fraction.
  std::uint32_t filler = tm.Begin();
  std::size_t word = 0;
  for (std::size_t x = 0; x < txns; ++x) {
    std::uint32_t tid = tm.Begin();
    for (std::size_t i = 0; i < kUpdatesPerTxn; ++i) {
      tm.Write(tid, &tbl[word++ % kTableWords], i);
      for (std::size_t s = 0; s < skip; ++s) {
        tm.Write(filler, &tbl[word++ % kTableWords], s);
      }
    }
    if (x >= to_recover) {
      // Commit; clearing is factored out of the measurement by using the
      // END-only commit under both policies.
      tm.CommitNoClear(tid);
    }
  }
  tm.CommitNoClear(filler);
  // Crash and recover: the first `to_recover` transactions are losers.
  tm.ForgetVolatileState();
  tm.Recover();
  return t.Seconds();
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  std::printf("# Fig 5: logging + commit/recovery cost vs fraction of "
              "recovered transactions (1L, Optimized log)\n");
  CsvTable table({"fraction", "1L-NFP-10", "1L-NFP-150", "1L-NFP-300",
                  "1L-FP-10", "1L-FP-150", "1L-FP-300"});
  for (double f = 0.0; f <= 1.001; f += 0.1) {
    std::vector<double> row{f};
    for (Policy policy : {Policy::kNoForce, Policy::kForce}) {
      for (std::size_t skip : {10u, 150u, 300u}) {
        row.push_back(RunOnce(policy, skip, f));
      }
    }
    table.Row(row);
  }
  return 0;
}
