// Figure 3: logging overhead of the four REWIND configurations.
//   Left:  overhead (slowdown vs non-recoverable NVM) as a function of
//          update intensity, for 2L/1L x force/no-force.
//   Right: overhead as a function of the number of skip records, 1L-FP vs
//          2L-FP at 100% update intensity.
// One-layer configurations use the Optimized log, as in the paper.
#include <cstdint>

#include "bench/bench_util.h"
#include "src/core/transaction_manager.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {
namespace {

// Calibrated "computation" between updates: multiples of a non-logged NVM
// store cost, as in the paper's microbenchmark.
inline void Compute(std::uint64_t* sink, std::size_t units) {
  std::uint64_t x = *sink;
  for (std::size_t i = 0; i < units * 40; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
  *sink = x;
}

/// One transaction alternating table updates with computation; commits at
/// the end. Returns elapsed seconds.
double RunMicrobench(TransactionManager* tm, std::uint64_t* table,
                     std::size_t table_words, std::size_t updates,
                     std::size_t compute_units_per_update) {
  std::uint64_t sink = 1;
  Timer t;
  std::uint32_t tid = tm->Begin();
  for (std::size_t i = 0; i < updates; ++i) {
    tm->Write(tid, &table[i % table_words], i);
    Compute(&sink, compute_units_per_update);
  }
  tm->Commit(tid);
  return t.Seconds() + (sink == 0 ? 1e-12 : 0.0);
}

/// Non-recoverable reference: NT stores to NVM, no logging.
double RunBaseline(NvmManager* nvm, std::uint64_t* table,
                   std::size_t table_words, std::size_t updates,
                   std::size_t compute_units_per_update) {
  std::uint64_t sink = 1;
  Timer t;
  for (std::size_t i = 0; i < updates; ++i) {
    nvm->StoreNT(&table[i % table_words], static_cast<std::uint64_t>(i));
    Compute(&sink, compute_units_per_update);
  }
  return t.Seconds() + (sink == 0 ? 1e-12 : 0.0);
}

void LeftPlot() {
  std::printf("# Fig 3 (left): logging overhead vs update intensity\n");
  CsvTable table({"update_intensity_pct", "2L-FP", "2L-NFP", "1L-FP",
                  "1L-NFP"});
  const std::size_t kUpdates = Scaled(20000);
  const std::size_t kTableWords = 1024;
  struct Cfg {
    Layers layers;
    Policy policy;
  };
  const Cfg kConfigs[] = {{Layers::kTwo, Policy::kForce},
                          {Layers::kTwo, Policy::kNoForce},
                          {Layers::kOne, Policy::kForce},
                          {Layers::kOne, Policy::kNoForce}};
  for (int pct = 10; pct <= 100; pct += 10) {
    // The computation share makes updates pct% of total work.
    std::size_t compute_units = pct >= 100 ? 0 : (100 - pct) / (pct / 10);
    std::vector<double> row{static_cast<double>(pct)};
    NvmManager ref_nvm(BenchNvmConfig(64));
    auto* ref_table = ref_nvm.AllocArray<std::uint64_t>(kTableWords);
    double base =
        RunBaseline(&ref_nvm, ref_table, kTableWords, kUpdates, compute_units);
    for (const Cfg& c : kConfigs) {
      RewindConfig rc =
          BenchConfig(LogImpl::kOptimized, c.layers, c.policy, 512);
      NvmManager nvm(rc.nvm);
      TransactionManager tm(&nvm, rc);
      auto* tbl = nvm.AllocArray<std::uint64_t>(kTableWords);
      double secs =
          RunMicrobench(&tm, tbl, kTableWords, kUpdates, compute_units);
      row.push_back(secs / base);
    }
    table.Row(row);
  }
}

void RightPlot() {
  std::printf(
      "\n# Fig 3 (right): logging overhead vs skip records (100%% updates, "
      "force policy)\n");
  CsvTable table({"skip_records", "2L-FP", "1L-FP"});
  const std::size_t kTargetUpdates = Scaled(300);
  const std::size_t kTableWords = 1024;
  for (std::size_t skip = 100; skip <= 1000; skip += 100) {
    std::vector<double> row{static_cast<double>(skip)};
    NvmManager ref_nvm(BenchNvmConfig(64));
    auto* ref_table = ref_nvm.AllocArray<std::uint64_t>(kTableWords);
    double base =
        RunBaseline(&ref_nvm, ref_table, kTableWords, kTargetUpdates, 0);
    for (Layers layers : {Layers::kTwo, Layers::kOne}) {
      RewindConfig rc =
          BenchConfig(LogImpl::kOptimized, layers, Policy::kForce, 512);
      NvmManager nvm(rc.nvm);
      TransactionManager tm(&nvm, rc);
      auto* tbl = nvm.AllocArray<std::uint64_t>(kTableWords);
      // Interleave: the target transaction's records are separated by
      // `skip` records of other (open) transactions updating the same
      // table. Only the *target's* operations are timed — its logging calls
      // plus its commit, whose force-policy clearing scans over all the
      // interleaved records (the skip-record cost).
      std::uint32_t target = tm.Begin();
      std::uint32_t other = tm.Begin();
      double target_secs = 0.0;
      for (std::size_t i = 0; i < kTargetUpdates; ++i) {
        Timer seg;
        tm.Write(target, &tbl[i % kTableWords], i);
        target_secs += seg.Seconds();
        for (std::size_t s = 0; s < skip; ++s) {
          tm.Write(other, &tbl[(i + s) % kTableWords], s);
        }
      }
      Timer commit_t;
      tm.Commit(target);  // force policy: clears via backward scan
      target_secs += commit_t.Seconds();
      row.push_back(target_secs / base);
    }
    table.Row(row);
  }
}

}  // namespace
}  // namespace rwd

int main() {
  rwd::LeftPlot();
  rwd::RightPlot();
  return 0;
}
