// Figure 4: single-transaction rollback (left) and recovery of one
// uncommitted transaction (right) as a function of the number of skip
// records, one- vs two-layer logging under the force policy.
#include <cstdint>

#include "bench/bench_util.h"
#include "src/core/transaction_manager.h"

namespace rwd {
namespace {

constexpr std::size_t kTargetUpdates = 200;
constexpr std::size_t kTableWords = 1024;

/// Builds the interleaved log state: the target transaction's records are
/// separated by `skip` records from other transactions.
std::uint32_t BuildInterleaved(TransactionManager* tm, std::uint64_t* tbl,
                               std::size_t skip, bool commit_others) {
  std::uint32_t target = tm->Begin();
  std::uint32_t other = tm->Begin();
  for (std::size_t i = 0; i < Scaled(kTargetUpdates); ++i) {
    tm->Write(target, &tbl[i % kTableWords], i);
    for (std::size_t s = 0; s < skip; ++s) {
      tm->Write(other, &tbl[(i + s) % kTableWords], s);
    }
  }
  if (commit_others) {
    // The paper's Fig 4 (right) scenario: the other transactions logged
    // their END records, but the crash hit before the log was cleared.
    tm->CommitNoClear(other);
  }
  return target;
}

void RollbackPlot() {
  std::printf("# Fig 4 (left): single-transaction rollback (ms) vs skip "
              "records, force policy\n");
  CsvTable table({"skip_records", "2L-FP_ms", "1L-FP_ms"});
  for (std::size_t skip = 100; skip <= 1000; skip += 100) {
    std::vector<double> row{static_cast<double>(skip)};
    for (Layers layers : {Layers::kTwo, Layers::kOne}) {
      RewindConfig rc =
          BenchConfig(LogImpl::kOptimized, layers, Policy::kForce, 768);
      NvmManager nvm(rc.nvm);
      TransactionManager tm(&nvm, rc);
      auto* tbl = nvm.AllocArray<std::uint64_t>(kTableWords);
      std::uint32_t target =
          BuildInterleaved(&tm, tbl, skip, /*commit_others=*/false);
      Timer t;
      tm.Rollback(target);
      row.push_back(t.Millis());
    }
    table.Row(row);
  }
}

void RecoveryPlot() {
  std::printf("\n# Fig 4 (right): recovery of one uncommitted transaction "
              "(s) vs skip records, force policy\n");
  CsvTable table({"skip_records", "2L-FP_s", "1L-FP_s"});
  for (std::size_t skip = 100; skip <= 1000; skip += 100) {
    std::vector<double> row{static_cast<double>(skip)};
    for (Layers layers : {Layers::kTwo, Layers::kOne}) {
      RewindConfig rc =
          BenchConfig(LogImpl::kOptimized, layers, Policy::kForce, 768);
      NvmManager nvm(rc.nvm);
      TransactionManager tm(&nvm, rc);
      auto* tbl = nvm.AllocArray<std::uint64_t>(kTableWords);
      BuildInterleaved(&tm, tbl, skip, /*commit_others=*/true);
      // Crash with the target transaction unfinished, then recover.
      tm.ForgetVolatileState();
      Timer t;
      tm.Recover();
      row.push_back(t.Seconds());
    }
    table.Row(row);
  }
}

}  // namespace
}  // namespace rwd

int main() {
  rwd::RollbackPlot();
  rwd::RecoveryPlot();
  return 0;
}
