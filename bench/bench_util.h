// Shared helpers for the figure-reproduction benches.
#ifndef REWIND_BENCH_BENCH_UTIL_H_
#define REWIND_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "src/core/config.h"

#ifndef REWIND_GIT_SHA
#define REWIND_GIT_SHA "unknown"
#endif

namespace rwd {

/// NVM config for benches: fast mode (no crash tracking), paper latencies
/// (150 ns per NVM write; fence latency is the Fig. 10 knob).
inline NvmConfig BenchNvmConfig(std::size_t heap_mb = 512) {
  NvmConfig cfg;
  cfg.mode = NvmMode::kFast;
  cfg.heap_bytes = heap_mb << 20;
  cfg.write_latency_ns = 150;
  cfg.fence_latency_ns = 100;
  return cfg;
}

inline RewindConfig BenchConfig(LogImpl impl, Layers layers, Policy policy,
                                std::size_t heap_mb = 512) {
  RewindConfig c;
  c.nvm = BenchNvmConfig(heap_mb);
  c.log_impl = impl;
  c.layers = layers;
  c.policy = policy;
  c.bucket_capacity = 1000;  // paper's Optimized configuration
  c.batch_group_size = 8;    // paper's Batch configuration
  return c;
}

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints a CSV table: header row then data rows.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns_[i].c_str());
    }
    std::printf("\n");
  }

  void Row(const std::vector<double>& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("%s%.4g", i ? "," : "", values[i]);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> columns_;
};

/// --name=value flag helpers shared by the benches.
inline std::uint64_t FlagOr(int argc, char** argv, const char* name,
                            std::uint64_t def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

/// True when the bare boolean flag `--name` is present.
inline bool HasFlag(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline std::string StringFlag(int argc, char** argv, const char* name,
                              const std::string& def = "") {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

/// The --workload=a..f letter (default 'a').
inline char WorkloadFlag(int argc, char** argv) {
  std::string w = StringFlag(argc, argv, "workload", "a");
  return w.empty() ? 'a' : w[0];
}

/// FNV-1a over a string — the benches' config fingerprint hash, so two
/// BENCH_*.json files are comparable iff their fingerprints match.
inline std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Minimal writer for the benches' machine-readable `--json=<path>`
/// results: one flat object of numbers and strings per file, so the
/// repo's perf trajectory (BENCH_*.json) can accumulate comparable runs.
/// Every file is stamped with provenance — the git SHA the binary was
/// built from, the UTC run timestamp and (when the bench supplies one via
/// SetConfigFingerprint) a hash of the knobs that make runs comparable.
class JsonObject {
 public:
  void Add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields_.push_back("\"" + key + "\": " + buf);
  }
  void Add(const std::string& key, std::uint64_t v) {
    fields_.push_back("\"" + key + "\": " + std::to_string(v));
  }
  void Add(const std::string& key, const std::string& v) {
    fields_.push_back("\"" + key + "\": \"" + Escape(v) + "\"");
  }
  void SetConfigFingerprint(std::uint64_t fp) { fingerprint_ = fp; }
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"git_sha\": \"%s\",\n", REWIND_GIT_SHA);
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char ts[32];
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    std::fprintf(f, "  \"timestamp_utc\": \"%s\",\n", ts);
    std::fprintf(f, "  \"config_fingerprint\": \"%016llx\"",
                 static_cast<unsigned long long>(fingerprint_));
    for (const std::string& field : fields_) {
      std::fprintf(f, ",\n  %s", field.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string Escape(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out.append(buf);
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::vector<std::string> fields_;
  std::uint64_t fingerprint_ = 0;
};

/// Scale factor: REWIND_BENCH_SCALE environment variable (default 1) scales
/// workload sizes so the full paper-sized runs are one knob away.
inline double BenchScale() {
  const char* s = std::getenv("REWIND_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline std::size_t Scaled(std::size_t base) {
  return static_cast<std::size_t>(static_cast<double>(base) * BenchScale());
}

}  // namespace rwd

#endif  // REWIND_BENCH_BENCH_UTIL_H_
