// Shared helpers for the figure-reproduction benches.
#ifndef REWIND_BENCH_BENCH_UTIL_H_
#define REWIND_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/config.h"

namespace rwd {

/// NVM config for benches: fast mode (no crash tracking), paper latencies
/// (150 ns per NVM write; fence latency is the Fig. 10 knob).
inline NvmConfig BenchNvmConfig(std::size_t heap_mb = 512) {
  NvmConfig cfg;
  cfg.mode = NvmMode::kFast;
  cfg.heap_bytes = heap_mb << 20;
  cfg.write_latency_ns = 150;
  cfg.fence_latency_ns = 100;
  return cfg;
}

inline RewindConfig BenchConfig(LogImpl impl, Layers layers, Policy policy,
                                std::size_t heap_mb = 512) {
  RewindConfig c;
  c.nvm = BenchNvmConfig(heap_mb);
  c.log_impl = impl;
  c.layers = layers;
  c.policy = policy;
  c.bucket_capacity = 1000;  // paper's Optimized configuration
  c.batch_group_size = 8;    // paper's Batch configuration
  return c;
}

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints a CSV table: header row then data rows.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns_[i].c_str());
    }
    std::printf("\n");
  }

  void Row(const std::vector<double>& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("%s%.4g", i ? "," : "", values[i]);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> columns_;
};

/// Scale factor: REWIND_BENCH_SCALE environment variable (default 1) scales
/// workload sizes so the full paper-sized runs are one knob away.
inline double BenchScale() {
  const char* s = std::getenv("REWIND_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline std::size_t Scaled(std::size_t base) {
  return static_cast<std::size_t>(static_cast<double>(base) * BenchScale());
}

}  // namespace rwd

#endif  // REWIND_BENCH_BENCH_UTIL_H_
