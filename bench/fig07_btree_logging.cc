// Figure 7: B+-tree logging performance.
//   Left:  response time vs fraction of update queries — DRAM, NVM (both
//          non-recoverable), and the three REWIND versions (1L, no-force,
//          no checkpoints).
//   Right: REWIND Batch vs the Stasis / BerkeleyDB / Shore-MT analogues.
// Workload: load Scaled(100k) 32-byte records, then Scaled(200k) operations
// with the given update fraction; updates split evenly between insertions
// and deletions (constant tree size).
#include <cstdint>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/core/transaction_manager.h"
#include "src/structures/btree.h"

namespace rwd {
namespace {

constexpr std::uint64_t kKeySpace = 1 << 22;

struct Workload {
  std::size_t load;
  std::size_t ops;
};

// Paper sizes are 100k records / 200k ops; defaults are 1/5 of that so the
// whole bench suite runs in minutes. REWIND_BENCH_SCALE=5 restores them.
Workload TheWorkload() { return {Scaled(20000), Scaled(40000)}; }

void Load(BTree* tree, StorageOps* ops, std::size_t n, bool txn_per_op) {
  std::uint64_t p[4] = {1, 2, 3, 4};
  std::uint64_t rng = 88172645463325252ull;
  for (std::size_t i = 0; i < n; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    p[0] = rng;
    if (txn_per_op) {
      tree->InsertTxn(ops, 1 + rng % kKeySpace, p);
    } else {
      tree->Insert(ops, 1 + rng % kKeySpace, p);
    }
  }
}

/// The paper's mixed workload: lookups plus insert/delete pairs.
double RunMix(BTree* tree, StorageOps* ops, std::size_t n_ops,
              double update_fraction, bool txn_per_op) {
  std::uint64_t rng = 0x1234567890ABCDEFull;
  std::uint64_t p[4] = {0, 0, 0, 0};
  Timer t;
  for (std::size_t i = 0; i < n_ops; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    std::uint64_t key = 1 + rng % kKeySpace;
    bool update = (rng >> 32) % 1000 <
                  static_cast<std::uint64_t>(update_fraction * 1000);
    if (!update) {
      tree->Lookup(ops, key, p);
    } else if (i % 2 == 0) {
      p[0] = rng;
      if (txn_per_op) {
        tree->InsertTxn(ops, key, p);
      } else {
        ops->BeginOp();
        tree->Insert(ops, key, p);
        ops->CommitOp();
      }
    } else {
      if (txn_per_op) {
        tree->RemoveTxn(ops, key);
      } else {
        ops->BeginOp();
        tree->Remove(ops, key);
        ops->CommitOp();
      }
    }
  }
  return t.Seconds();
}

double RunRewind(LogImpl impl, double frac) {
  RewindConfig rc = BenchConfig(impl, Layers::kOne, Policy::kNoForce, 2048);
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  RewindOps ops(&tm);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  Load(&tree, &ops, TheWorkload().load, /*txn_per_op=*/true);
  return RunMix(&tree, &ops, TheWorkload().ops, frac, /*txn_per_op=*/true);
}

double RunPlain(bool dram, double frac) {
  std::unique_ptr<NvmManager> nvm;
  std::unique_ptr<StorageOps> ops;
  if (dram) {
    ops = std::make_unique<DramOps>();
  } else {
    nvm = std::make_unique<NvmManager>(BenchNvmConfig(2048));
    ops = std::make_unique<NvmOps>(nvm.get());
  }
  BTree tree(ops.get());
  Load(&tree, ops.get(), TheWorkload().load, false);
  return RunMix(&tree, ops.get(), TheWorkload().ops, frac, false);
}

double RunBaseline(AriesEngine* engine, double frac) {
  BaselineOps ops(engine);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  Load(&tree, &ops, TheWorkload().load / 10, /*txn_per_op=*/true);
  // The baselines are orders of magnitude slower: run a tenth of the ops
  // and scale, or the bench takes minutes per point.
  double secs =
      RunMix(&tree, &ops, TheWorkload().ops / 10, frac, /*txn_per_op=*/true);
  return secs * 10.0;
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  std::printf("# Fig 7 (left): B+-tree response time (s) vs update "
              "fraction\n");
  {
    CsvTable table({"update_fraction", "DRAM", "NVM", "REWIND_Simple",
                    "REWIND_Opt", "REWIND_Batch"});
    for (double f = 0.1; f <= 1.001; f += 0.1) {
      std::vector<double> row{f};
      row.push_back(RunPlain(/*dram=*/true, f));
      row.push_back(RunPlain(/*dram=*/false, f));
      row.push_back(RunRewind(LogImpl::kSimple, f));
      row.push_back(RunRewind(LogImpl::kOptimized, f));
      row.push_back(RunRewind(LogImpl::kBatch, f));
      table.Row(row);
    }
  }
  std::printf("\n# Fig 7 (right): REWIND Batch vs baselines (s, estimated "
              "from 1/10 ops)\n");
  {
    CsvTable table({"update_fraction", "BerkeleyDB", "Stasis",
                    "REWIND_Batch", "Shore-MT"});
    for (double f = 0.2; f <= 1.001; f += 0.2) {
      std::vector<double> row{f};
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto bdb = MakeBdbLike(&nvm, 65536);
        row.push_back(RunBaseline(bdb.get(), f));
      }
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto stasis = MakeStasisLike(&nvm, 65536);
        row.push_back(RunBaseline(stasis.get(), f));
      }
      row.push_back(RunRewind(LogImpl::kBatch, f));
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto shore = MakeShoreLike(&nvm, 65536);
        row.push_back(RunBaseline(shore.get(), f));
      }
      table.Row(row);
    }
  }
  return 0;
}
