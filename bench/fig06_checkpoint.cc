// Figure 6: checkpointing overhead as a percentage of non-checkpointed
// execution, for the Simple, Optimized and Batch logs (one-layer, no-force)
// across checkpoint frequencies. The paper inserts ten million records over
// tens of seconds; we scale both the record count and the period range down
// proportionally (REWIND_BENCH_SCALE restores larger runs).
#include <cstdint>

#include "bench/bench_util.h"
#include "src/core/runtime.h"

namespace rwd {
namespace {

double RunInsertions(LogImpl impl, std::uint32_t checkpoint_ms) {
  RewindConfig rc = BenchConfig(impl, Layers::kOne, Policy::kNoForce, 1024);
  Runtime rt(rc);
  auto& tm = rt.tm();
  auto* tbl = rt.nvm().AllocArray<std::uint64_t>(4096);
  const std::size_t kRecords = Scaled(150000);
  if (checkpoint_ms != 0) rt.StartCheckpointDaemon(checkpoint_ms);
  Timer t;
  // Committed single-update transactions: each leaves records for the
  // checkpointer to clear.
  for (std::size_t i = 0; i < kRecords; ++i) {
    std::uint32_t tid = tm.Begin();
    tm.Write(tid, &tbl[i % 4096], i);
    tm.Commit(tid);
  }
  double secs = t.Seconds();
  rt.StopCheckpointDaemon();
  return secs;
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  std::printf("# Fig 6: checkpoint overhead (%% over no checkpoints) vs "
              "checkpoint period; 1L-NFP\n");
  std::printf("# paper sweeps 2-14 s; scaled run sweeps 40-280 ms over a "
              "proportionally smaller insertion count\n");
  CsvTable table({"period_ms", "Simple_pct", "Optimized_pct", "Batch_pct"});
  double base[3];
  const LogImpl kImpls[] = {LogImpl::kSimple, LogImpl::kOptimized,
                            LogImpl::kBatch};
  for (int i = 0; i < 3; ++i) base[i] = RunInsertions(kImpls[i], 0);
  for (std::uint32_t period = 40; period <= 280; period += 40) {
    std::vector<double> row{static_cast<double>(period)};
    for (int i = 0; i < 3; ++i) {
      double with = RunInsertions(kImpls[i], period);
      row.push_back((with - base[i]) / base[i] * 100.0);
    }
    table.Row(row);
  }
  return 0;
}
