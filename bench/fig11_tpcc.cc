// Figure 11: TPC-C new_order throughput (thousand transactions per minute)
// for the four data layouts — non-recoverable NVM B+-trees, naive REWIND,
// co-designed (optimized) REWIND, and optimized REWIND with a distributed
// log. Scale factor 1, ten terminals, 1% user aborts.
#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/tpcc/tpcc.h"

namespace rwd {
namespace {

double RunLayout(TpccLayout layout) {
  RewindConfig rc =
      BenchConfig(LogImpl::kBatch, Layers::kOne, Policy::kNoForce, 2048);
  std::size_t partitions =
      layout == TpccLayout::kRewindDistLog ? TpccScale::kTerminals : 1;
  Runtime rt(rc, partitions);
  return RunTpcc(&rt, layout, static_cast<std::uint32_t>(Scaled(2000)));
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  std::printf("# Fig 11: TPC-C new_order throughput (thousand txns/min), "
              "10 terminals, 1%% aborts\n");
  CsvTable table({"NVM_plain_ktpm", "REWIND_opt_dlog_ktpm",
                  "REWIND_opt_ktpm", "REWIND_naive_ktpm"});
  std::vector<double> row;
  row.push_back(RunLayout(TpccLayout::kNvmPlain) / 1000.0);
  row.push_back(RunLayout(TpccLayout::kRewindDistLog) / 1000.0);
  row.push_back(RunLayout(TpccLayout::kRewindOptimized) / 1000.0);
  row.push_back(RunLayout(TpccLayout::kRewindNaive) / 1000.0);
  table.Row(row);
  return 0;
}
