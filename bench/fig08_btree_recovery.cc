// Figure 8: B+-tree rollback of a single large transaction (left) and full
// recovery with many transactions (right), REWIND Batch vs the baselines,
// as a function of the number of operations.
#include <cstdint>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/core/transaction_manager.h"
#include "src/structures/btree.h"

namespace rwd {
namespace {

constexpr std::uint64_t kKeySpace = 1 << 22;

void LoadTree(BTree* tree, StorageOps* ops, std::size_t n) {
  std::uint64_t p[4] = {1, 0, 0, 0};
  std::uint64_t rng = 0xABCDEF1234567ull;
  ops->BeginOp();
  for (std::size_t i = 0; i < n; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    tree->Insert(ops, 1 + rng % kKeySpace, p);
  }
  ops->CommitOp();
}

/// Runs `n_ops` random insert/delete pairs. With `txn_every` > 0 a new
/// transaction starts every that many operations (all left to the crash);
/// otherwise everything happens in one transaction that is rolled back.
template <typename OpsT>
void MixedOps(BTree* tree, OpsT* ops, std::size_t n_ops,
              std::size_t txn_every) {
  std::uint64_t p[4] = {2, 0, 0, 0};
  std::uint64_t rng = 99;
  ops->BeginOp();
  for (std::size_t i = 0; i < n_ops; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    std::uint64_t key = 1 + rng % kKeySpace;
    if (i % 2 == 0) {
      tree->Insert(ops, key, p);
    } else {
      tree->Remove(ops, key);
    }
    if (txn_every != 0 && (i + 1) % txn_every == 0) {
      ops->CommitOp();
      ops->BeginOp();
    }
  }
}

double RewindRollback(std::size_t n_ops) {
  RewindConfig rc =
      BenchConfig(LogImpl::kBatch, Layers::kOne, Policy::kNoForce, 3072);
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  RewindOps ops(&tm);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  LoadTree(&tree, &ops, Scaled(20000));
  MixedOps(&tree, &ops, n_ops, 0);
  Timer t;
  ops.AbortOp();
  return t.Seconds();
}

double RewindRecovery(std::size_t n_ops) {
  RewindConfig rc =
      BenchConfig(LogImpl::kBatch, Layers::kOne, Policy::kNoForce, 3072);
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  RewindOps ops(&tm);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  LoadTree(&tree, &ops, Scaled(20000));
  MixedOps(&tree, &ops, n_ops, 200);  // a transaction every 200 ops
  tm.ForgetVolatileState();
  Timer t;
  tm.Recover();
  return t.Seconds();
}

double BaselineRollback(AriesEngine* engine, std::size_t n_ops) {
  BaselineOps ops(engine);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  LoadTree(&tree, &ops, Scaled(20000) / 10);
  MixedOps(&tree, &ops, n_ops / 10, 0);
  Timer t;
  ops.AbortOp();
  return t.Seconds() * 10.0;  // estimated from a tenth of the work
}

double BaselineRecovery(AriesEngine* engine, std::size_t n_ops) {
  BaselineOps ops(engine);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  LoadTree(&tree, &ops, Scaled(20000) / 10);
  MixedOps(&tree, &ops, n_ops / 10, 200);
  Timer t;
  engine->SimulateCrashAndRecover();
  return t.Seconds() * 10.0;
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  std::printf("# Fig 8 (left): single-transaction rollback (s) vs thousands of operations (paper: 80-800k; scaled 1/20)\n");
  {
    CsvTable table({"kops", "Shore-MT", "BerkeleyDB", "Stasis",
                    "REWIND_Batch"});
    for (std::size_t kops = 4; kops <= 40; kops += 4) {
      std::size_t n = Scaled(kops * 1000);
      std::vector<double> row{static_cast<double>(kops)};
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto e = MakeShoreLike(&nvm, 65536);
        row.push_back(BaselineRollback(e.get(), n));
      }
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto e = MakeBdbLike(&nvm, 65536);
        row.push_back(BaselineRollback(e.get(), n));
      }
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto e = MakeStasisLike(&nvm, 65536);
        row.push_back(BaselineRollback(e.get(), n));
      }
      row.push_back(RewindRollback(n));
      table.Row(row);
    }
  }
  std::printf("\n# Fig 8 (right): multi-transaction recovery (s) vs "
              "thousands of operations (txn per 200 ops)\n");
  {
    CsvTable table({"kops", "Shore-MT", "BerkeleyDB", "Stasis",
                    "REWIND_Batch"});
    for (std::size_t kops = 4; kops <= 40; kops += 4) {
      std::size_t n = Scaled(kops * 1000);
      std::vector<double> row{static_cast<double>(kops)};
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto e = MakeShoreLike(&nvm, 65536);
        row.push_back(BaselineRecovery(e.get(), n));
      }
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto e = MakeBdbLike(&nvm, 65536);
        row.push_back(BaselineRecovery(e.get(), n));
      }
      {
        NvmManager nvm(BenchNvmConfig(3072));
        auto e = MakeStasisLike(&nvm, 65536);
        row.push_back(BaselineRecovery(e.get(), n));
      }
      row.push_back(RewindRecovery(n));
      table.Row(row);
    }
  }
  return 0;
}
