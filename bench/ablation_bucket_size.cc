// Ablation (DESIGN.md): sensitivity of the Optimized/Batch logs to the
// bucket capacity — the knob the paper says balances long-running
// transactions' memory waste against expansion frequency (Section 3.3).
#include "bench/bench_util.h"
#include "src/core/transaction_manager.h"

namespace rwd {
namespace {

double RunInserts(LogImpl impl, std::size_t bucket_capacity) {
  RewindConfig rc =
      BenchConfig(impl, Layers::kOne, Policy::kNoForce, 1024);
  rc.bucket_capacity = bucket_capacity;
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  auto* tbl = nvm.AllocArray<std::uint64_t>(4096);
  const std::size_t kRecords = Scaled(200000);
  Timer t;
  for (std::size_t i = 0; i < kRecords; ++i) {
    std::uint32_t tid = tm.Begin();
    tm.Write(tid, &tbl[i % 4096], i);
    tm.Commit(tid);
  }
  return t.Seconds();
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  std::printf("# Ablation: logging time (s) vs bucket capacity, 1L-NFP\n");
  CsvTable table({"bucket_capacity", "Optimized_s", "Batch_s"});
  for (std::size_t cap : {10u, 50u, 100u, 500u, 1000u, 5000u, 20000u}) {
    table.Row({static_cast<double>(cap), RunInserts(LogImpl::kOptimized, cap),
               RunInserts(LogImpl::kBatch, cap)});
  }
  return 0;
}
