// Figure 10: memory-fence latency sensitivity. Repeats the Fig. 7 workload
// at 100% updates while sweeping the fence latency 0-5 us; REWIND Optimized
// (no grouping) vs REWIND Batch with group sizes 8, 16, 32.
#include <cstdint>

#include "bench/bench_util.h"
#include "src/core/transaction_manager.h"
#include "src/structures/btree.h"

namespace rwd {
namespace {

constexpr std::uint64_t kKeySpace = 1 << 22;

double RunAllUpdates(LogImpl impl, std::size_t group,
                     std::uint32_t fence_ns) {
  RewindConfig rc =
      BenchConfig(impl, Layers::kOne, Policy::kNoForce, 2048);
  rc.batch_group_size = group;
  rc.nvm.fence_latency_ns = fence_ns;
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  RewindOps ops(&tm);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  std::uint64_t p[4] = {1, 0, 0, 0};
  std::uint64_t rng = 0xFEDCBA987654321ull;
  const std::size_t kLoad = Scaled(20000);
  for (std::size_t i = 0; i < kLoad; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    tree.InsertTxn(&ops, 1 + rng % kKeySpace, p);
  }
  const std::size_t kOps = Scaled(40000);
  Timer t;
  for (std::size_t i = 0; i < kOps; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    std::uint64_t key = 1 + rng % kKeySpace;
    if (i % 2 == 0) {
      tree.InsertTxn(&ops, key, p);
    } else {
      tree.RemoveTxn(&ops, key);
    }
  }
  return t.Seconds();
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  std::printf("# Fig 10: duration (s) vs memory fence latency (us), 100%% "
              "update B+-tree workload\n");
  CsvTable table({"fence_us", "REWIND_Batch32", "REWIND_Batch16",
                  "REWIND_Batch8", "REWIND_Opt"});
  for (std::uint32_t fence_us = 0; fence_us <= 5; ++fence_us) {
    std::vector<double> row{static_cast<double>(fence_us)};
    row.push_back(RunAllUpdates(LogImpl::kBatch, 32, fence_us * 1000));
    row.push_back(RunAllUpdates(LogImpl::kBatch, 16, fence_us * 1000));
    row.push_back(RunAllUpdates(LogImpl::kBatch, 8, fence_us * 1000));
    row.push_back(RunAllUpdates(LogImpl::kOptimized, 0, fence_us * 1000));
    table.Row(row);
  }
  return 0;
}
