// YCSB-style serving benchmark over RewindKV: loads a key space, runs one
// of the standard A-F mixes from N threads against an M-shard store, and
// reports aggregate and per-shard throughput.
//
//   ./build/bench/ycsb --workload=a --shards=4 --threads=4
//
// Flags: --workload=a..f|w  --shards=N  --threads=N  --records=N  --ops=N
//        --duration-seconds=S (fixed wall-clock window instead of --ops;
//        the right mode for perf comparisons — sub-second op-count runs
//        are too noisy to judge a change)
//        --value-size=BYTES  --checkpoint-ms=N (0 = off)
//        --no-optimistic-reads (disable the seqlock Get fast path)
//        --heap-file=PATH (file-backed durable heap instead of DRAM)
//        --json=PATH (machine-readable results: ops/s, p50/p99, config)
// REWIND_BENCH_SCALE scales --records/--ops defaults like the other benches.
#include <algorithm>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/kv/kv_store.h"
#include "src/workload/workload.h"

namespace rwd {
namespace {

int Main(int argc, char** argv) {
  char workload = WorkloadFlag(argc, argv);
  WorkloadSpec spec = WorkloadSpec::Preset(workload);
  spec.record_count = FlagOr(argc, argv, "records", Scaled(20000));
  spec.op_count = FlagOr(argc, argv, "ops", Scaled(50000));
  spec.duration_seconds =
      std::strtod(StringFlag(argc, argv, "duration-seconds", "0").c_str(),
                  nullptr);
  spec.value_size = FlagOr(argc, argv, "value-size", 100);
  spec.threads = FlagOr(argc, argv, "threads", 4);
  // Latency sampling costs two clock reads per op — it DOMINATES the
  // latch-free read path (tens of ns/op) on read-mostly mixes — so it is
  // only on when results are kept, and --no-latencies turns it off even
  // then (throughput-comparison runs; p50/p99 report as 0).
  std::string json_path = StringFlag(argc, argv, "json");
  spec.collect_latencies =
      !json_path.empty() && !HasFlag(argc, argv, "no-latencies");

  KvConfig config;
  config.rewind = BenchConfig(LogImpl::kBatch, Layers::kOne, Policy::kNoForce);
  config.shards = std::max<std::uint64_t>(FlagOr(argc, argv, "shards", 4), 1);
  config.checkpoint_period_ms =
      static_cast<std::uint32_t>(FlagOr(argc, argv, "checkpoint-ms", 50));
  config.rewind.nvm.heap_file = StringFlag(argc, argv, "heap-file");
  config.optimistic_reads = !HasFlag(argc, argv, "no-optimistic-reads");

  std::printf("# ycsb workload=%c shards=%zu threads=%zu records=%lu "
              "ops=%lu duration=%.2fs value=%zuB rewind=%s heap=%s "
              "optimistic=%d\n",
              workload, config.shards, spec.threads,
              static_cast<unsigned long>(spec.record_count),
              static_cast<unsigned long>(spec.op_count),
              spec.duration_seconds, spec.value_size,
              config.rewind.Label().c_str(),
              config.rewind.nvm.heap_file.empty()
                  ? "dram"
                  : config.rewind.nvm.heap_file.c_str(),
              config.optimistic_reads ? 1 : 0);

  KvStore store(config);
  WorkloadDriver driver(&store, spec);

  Timer load_timer;
  driver.Load();
  double load_s = load_timer.Seconds();
  std::printf("# load: %lu keys in %.3f s (%.0f keys/s)\n",
              static_cast<unsigned long>(store.Size()), load_s,
              spec.record_count / load_s);

  store.ResetStats();
  WorkloadResult r = driver.Run();
  std::printf("# run: %lu ops in %.3f s — reads=%lu (misses=%lu) "
              "updates=%lu inserts=%lu scans=%lu (items=%lu) rmw=%lu "
              "mputs=%lu (keys=%lu)\n",
              static_cast<unsigned long>(r.ops()), r.seconds,
              static_cast<unsigned long>(r.reads),
              static_cast<unsigned long>(r.read_misses),
              static_cast<unsigned long>(r.updates),
              static_cast<unsigned long>(r.inserts),
              static_cast<unsigned long>(r.scans),
              static_cast<unsigned long>(r.scanned_items),
              static_cast<unsigned long>(r.rmws),
              static_cast<unsigned long>(r.mputs),
              static_cast<unsigned long>(r.mput_keys));

  CsvTable table({"shard", "keys", "puts", "gets", "hits", "deletes",
                  "scans", "multiput_keys", "opt_hits", "opt_retries",
                  "latched_reads", "kops_per_s"});
  double total_kops = 0;
  std::uint64_t opt_hits = 0, opt_retries = 0, latched_reads = 0;
  for (std::size_t i = 0; i < store.shards(); ++i) {
    KvShardStats s = store.shard_stats(i);
    opt_hits += s.optimistic_hits;
    opt_retries += s.optimistic_retries;
    latched_reads += s.read_latch_acquires;
    // A store-wide Scan bumps every shard's counter; attribute an even
    // share per shard so the kops column sums to the true rate.
    double shard_ops =
        static_cast<double>(s.puts + s.gets + s.deletes + s.multiput_keys) +
        static_cast<double>(s.scans) / store.shards();
    double kops = shard_ops / r.seconds / 1e3;
    total_kops += kops;
    table.Row({static_cast<double>(i), static_cast<double>(s.keys),
               static_cast<double>(s.puts), static_cast<double>(s.gets),
               static_cast<double>(s.hits), static_cast<double>(s.deletes),
               static_cast<double>(s.scans),
               static_cast<double>(s.multiput_keys),
               static_cast<double>(s.optimistic_hits),
               static_cast<double>(s.optimistic_retries),
               static_cast<double>(s.read_latch_acquires), kops});
  }
  double p50 = r.LatencyPercentileUs(50);
  double p90 = r.LatencyPercentileUs(90);
  double p99 = r.LatencyPercentileUs(99);
  double p999 = r.LatencyPercentileUs(99.9);
  std::printf("# total: %.1f kops/s across %zu shards (%.0f ops/s "
              "aggregate)\n",
              total_kops, store.shards(), r.throughput());
  std::printf("# read path: optimistic=%lu retries=%lu latched=%lu; "
              "2pc fan-out: parallel=%lu max_width=%lu\n",
              static_cast<unsigned long>(opt_hits),
              static_cast<unsigned long>(opt_retries),
              static_cast<unsigned long>(latched_reads),
              static_cast<unsigned long>(store.store_txn().parallel_prepares()),
              static_cast<unsigned long>(
                  store.store_txn().max_prepare_fanout()));
  if (spec.collect_latencies) {
    std::printf("# latency: p50=%.1fus p99=%.1fus\n", p50, p99);
  }

  if (!json_path.empty()) {
    JsonObject json;
    // Fingerprint over every knob that affects comparability: two runs
    // with the same fingerprint measure the same configuration.
    json.SetConfigFingerprint(Fnv1a(
        std::string("ycsb|") + workload + "|" + config.rewind.Label() +
        "|shards=" + std::to_string(config.shards) +
        "|threads=" + std::to_string(spec.threads) +
        "|records=" + std::to_string(spec.record_count) +
        "|value=" + std::to_string(spec.value_size) +
        "|ckpt=" + std::to_string(config.checkpoint_period_ms) +
        "|opt=" + std::to_string(config.optimistic_reads ? 1 : 0) +
        "|lat=" + std::to_string(spec.collect_latencies ? 1 : 0)));
    json.Add("bench", std::string("ycsb"));
    json.Add("workload", std::string(1, workload));
    json.Add("rewind", config.rewind.Label());
    // Commit-pipeline configuration and counters, so BENCH_*.json
    // trajectories stay comparable across PRs: how the store was sharded,
    // how the Batch log groups fences, and how many commits took the
    // two-phase (cross-shard) vs. fast (single-shard) path.
    json.Add("shards", static_cast<std::uint64_t>(config.shards));
    json.Add("batch_group_size",
             static_cast<std::uint64_t>(config.rewind.batch_group_size));
    json.Add("checkpoint_ms",
             static_cast<std::uint64_t>(config.checkpoint_period_ms));
    json.Add("two_phase_commits", store.store_txn().two_phase_commits());
    json.Add("fast_commits", store.store_txn().fast_commits());
    // Concurrent read path: how many Gets were served latch-free, how many
    // seqlock validations conflicted, how many reads fell back to the
    // shared latch — and how wide the 2PC prepare fan-out ran.
    json.Add("optimistic_hits", opt_hits);
    json.Add("optimistic_retries", opt_retries);
    json.Add("read_latch_acquires", latched_reads);
    json.Add("parallel_prepares", store.store_txn().parallel_prepares());
    json.Add("max_prepare_fanout", store.store_txn().max_prepare_fanout());
    // Parallel write pipeline (PR 8): batches whose per-shard apply loops
    // ran fanned out across the shared pool, and 2PC commits that retired
    // their decision by the presumed-commit bulk path.
    json.Add("parallel_applies", store.parallel_applies());
    json.Add("presumed_commits", store.store_txn().presumed_commits());
    // Heap dimension: where the emulated NVM device lives and how much of
    // the arena the run consumed.
    json.Add("heap_mode",
             std::string(store.file_backed() ? "file" : "dram"));
    json.Add("heap_used_bytes", store.heap_live_bytes());
    json.Add("heap_high_watermark", store.heap_high_watermark());
    json.Add("threads", static_cast<std::uint64_t>(spec.threads));
    json.Add("duration_seconds", spec.duration_seconds);
    json.Add("optimistic_reads",
             static_cast<std::uint64_t>(config.optimistic_reads ? 1 : 0));
    json.Add("records", spec.record_count);
    json.Add("value_size", static_cast<std::uint64_t>(spec.value_size));
    json.Add("ops", r.ops());
    json.Add("seconds", r.seconds);
    json.Add("ops_per_s", r.throughput());
    json.Add("p50_us", p50);
    json.Add("p90_us", p90);
    json.Add("p99_us", p99);
    json.Add("p999_us", p999);
    json.Add("reads", r.reads);
    json.Add("read_misses", r.read_misses);
    json.Add("updates", r.updates);
    json.Add("inserts", r.inserts);
    json.Add("scans", r.scans);
    json.Add("scanned_items", r.scanned_items);
    json.Add("rmws", r.rmws);
    json.Add("mputs", r.mputs);
    json.Add("mput_keys", r.mput_keys);
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# json results -> %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace rwd

int main(int argc, char** argv) { return rwd::Main(argc, argv); }
