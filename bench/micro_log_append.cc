// Google-benchmark micro costs: per-record append cost of the three log
// structures and per-write cost of the transaction manager configurations.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/transaction_manager.h"
#include "src/log/batch_log.h"
#include "src/log/simple_log.h"

namespace rwd {
namespace {

LogRecord* NewRec(NvmManager* nvm, std::uint64_t lsn) {
  LogRecord local{};
  local.lsn = lsn;
  local.tid = 1;
  local.type = LogRecordType::kUpdate;
  auto* rec = static_cast<LogRecord*>(nvm->Alloc(sizeof(LogRecord)));
  nvm->StoreNTObject(rec, local);
  nvm->Fence();
  return rec;
}

void BM_SimpleLogAppend(benchmark::State& state) {
  NvmManager nvm(BenchNvmConfig(1024));
  SimpleLog log(&nvm);
  std::uint64_t lsn = 0;
  for (auto _ : state) {
    log.Append(NewRec(&nvm, ++lsn));
  }
}
BENCHMARK(BM_SimpleLogAppend);

void BM_BucketLogAppend(benchmark::State& state) {
  NvmManager nvm(BenchNvmConfig(1024));
  BucketLog log(&nvm, 1000, 0);
  std::uint64_t lsn = 0;
  for (auto _ : state) {
    log.Append(NewRec(&nvm, ++lsn));
  }
}
BENCHMARK(BM_BucketLogAppend);

void BM_BatchLogAppend(benchmark::State& state) {
  NvmManager nvm(BenchNvmConfig(1024));
  BatchLog log(&nvm, 1000, 8);
  std::uint64_t lsn = 0;
  for (auto _ : state) {
    LogRecord local{};
    local.lsn = ++lsn;
    local.tid = 1;
    local.type = LogRecordType::kUpdate;
    auto* rec = static_cast<LogRecord*>(nvm.Alloc(sizeof(LogRecord)));
    nvm.StoreObject(rec, local);
    log.Append(rec);
  }
}
BENCHMARK(BM_BatchLogAppend);

void BM_TmWriteCommit(benchmark::State& state) {
  auto impl = static_cast<LogImpl>(state.range(0));
  auto policy = static_cast<Policy>(state.range(1));
  RewindConfig rc = BenchConfig(impl, Layers::kOne, policy, 1024);
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  auto* tbl = nvm.AllocArray<std::uint64_t>(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::uint32_t tid = tm.Begin();
    ++i;
    tm.Write(tid, &tbl[i % 1024], i);
    tm.Commit(tid);
  }
}
BENCHMARK(BM_TmWriteCommit)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->ArgNames({"log_impl", "policy"});

void BM_TwoLayerWrite(benchmark::State& state) {
  RewindConfig rc =
      BenchConfig(LogImpl::kOptimized, Layers::kTwo, Policy::kNoForce, 1024);
  NvmManager nvm(rc.nvm);
  TransactionManager tm(&nvm, rc);
  auto* tbl = nvm.AllocArray<std::uint64_t>(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::uint32_t tid = tm.Begin();
    ++i;
    tm.Write(tid, &tbl[i % 1024], i);
    tm.Commit(tid);
  }
}
BENCHMARK(BM_TwoLayerWrite);

}  // namespace
}  // namespace rwd

BENCHMARK_MAIN();
