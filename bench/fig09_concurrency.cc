// Figure 9: multithreaded B+-tree logging performance — total processing
// time vs number of threads, each thread performing Scaled(100k)/10
// operations (insert/delete pairs or lookups, per-thread ratio 20-80%).
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/core/transaction_manager.h"
#include "src/structures/btree.h"

namespace rwd {
namespace {

constexpr std::uint64_t kKeySpace = 1 << 22;

/// Each thread owns a key-space slice, as the paper's task pool effectively
/// partitions work; thread-safety of user data is the programmer's job.
template <typename MakeOps>
double RunThreads(BTree* tree, MakeOps make_ops, std::size_t threads,
                  std::size_t ops_per_thread) {
  Timer t;
  std::vector<std::thread> workers;
  for (std::size_t th = 0; th < threads; ++th) {
    workers.emplace_back([&, th] {
      auto ops = make_ops();
      // Per-thread lookup ratio from 20% to 80%.
      std::uint64_t lookup_pct = 20 + (th * 60) / (threads == 1 ? 1 : threads - 1);
      std::uint64_t rng = 7777 * (th + 1);
      std::uint64_t p[4] = {th, 0, 0, 0};
      std::uint64_t base = (kKeySpace / threads) * th;
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        std::uint64_t key = 1 + base + rng % (kKeySpace / threads);
        if (rng % 100 < lookup_pct) {
          tree->Lookup(ops.get(), key, p);
        } else {
          // Insert/delete pair.
          ops->BeginOp();
          tree->Insert(ops.get(), key, p);
          ops->CommitOp();
          ops->BeginOp();
          tree->Remove(ops.get(), key);
          ops->CommitOp();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  return t.Seconds();
}

}  // namespace
}  // namespace rwd

int main() {
  using namespace rwd;
  const std::size_t kOps = Scaled(4000);
  std::printf("# Fig 9: multithreaded B+-tree processing time (s) vs "
              "threads (%zu mixed ops per thread)\n", kOps);
  CsvTable table(
      {"threads", "Shore-MT", "BerkeleyDB", "Stasis", "REWIND_Batch"});
  for (std::size_t threads = 1; threads <= 8; ++threads) {
    std::vector<double> row{static_cast<double>(threads)};
    {
      NvmManager nvm(BenchNvmConfig(2048));
      auto e = MakeShoreLike(&nvm, 32768, "shore",
                             std::min<std::size_t>(threads, 4));
      BaselineOps boot(e.get());
      boot.BeginOp();
      BTree tree(&boot);
      boot.CommitOp();
      row.push_back(RunThreads(
          &tree, [&] { return std::make_unique<BaselineOps>(e.get()); },
          threads, kOps / 4));
    }
    {
      NvmManager nvm(BenchNvmConfig(2048));
      auto e = MakeBdbLike(&nvm, 32768);
      BaselineOps boot(e.get());
      boot.BeginOp();
      BTree tree(&boot);
      boot.CommitOp();
      row.push_back(RunThreads(
          &tree, [&] { return std::make_unique<BaselineOps>(e.get()); },
          threads, kOps / 4));
    }
    {
      NvmManager nvm(BenchNvmConfig(2048));
      auto e = MakeStasisLike(&nvm, 32768);
      BaselineOps boot(e.get());
      boot.BeginOp();
      BTree tree(&boot);
      boot.CommitOp();
      row.push_back(RunThreads(
          &tree, [&] { return std::make_unique<BaselineOps>(e.get()); },
          threads, kOps / 4));
    }
    {
      RewindConfig rc =
          BenchConfig(LogImpl::kBatch, Layers::kOne, Policy::kNoForce, 2048);
      NvmManager nvm(rc.nvm);
      TransactionManager tm(&nvm, rc);
      RewindOps boot(&tm);
      boot.BeginOp();
      BTree tree(&boot);
      boot.CommitOp();
      // Baselines ran a quarter of the ops; scale REWIND identically.
      row.push_back(RunThreads(
          &tree, [&] { return std::make_unique<RewindOps>(&tm); }, threads,
          kOps / 4));
    }
    table.Row(row);
  }
  return 0;
}
